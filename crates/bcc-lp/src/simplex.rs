//! Two-phase dense primal simplex with Bland's rule, a flat cache-friendly
//! tableau, and a deterministic warm-start fast path.
//!
//! The implementation follows the classic tableau formulation:
//!
//! 1. Normalise every row to a non-negative right-hand side.
//! 2. Add a slack variable per `≤` row, a surplus variable per `≥` row, and
//!    an artificial variable per `≥`/`=` row.
//! 3. **Phase 1** minimises the sum of artificials; a positive optimum means
//!    the program is infeasible. Artificials stuck in the basis at level
//!    zero are pivoted out (or their rows dropped as redundant).
//! 4. **Phase 2** optimises the true objective with artificial columns
//!    barred from entering.
//!
//! Bland's smallest-index rule guarantees termination even on degenerate
//! problems (e.g. the Beale cycling example in the crate tests), at the cost
//! of a few extra pivots — irrelevant at this problem scale.
//!
//! # Memory layout
//!
//! The tableau is one contiguous stride-indexed `Vec<f64>` (row-major,
//! `ncols + 1` wide — the last column is the RHS) owned by a caller-supplied
//! [`Workspace`], so batched workloads — the `Scenario` evaluator in
//! `bcc-core` solves hundreds of thousands of near-identical tiny LPs per
//! sweep — pay for the buffers once and every pivot walks flat memory.
//! Redundant rows discovered in phase 1 are removed by a `copy_within`
//! shift, never by reallocating.
//!
//! # Canonical extraction
//!
//! Once the optimal basis is known, the solution is **re-derived from the
//! original problem data** by an LU factorisation of the basis matrix with
//! a fixed pivoting rule, instead of being read off the pivoted tableau.
//! This makes the reported `x` a pure function of `(problem, optimal
//! basis)` — independent of the pivot *path* that found the basis — which
//! is what lets the warm-start fast path below return bit-identical
//! results to a cold solve. (If the factorisation is near-singular the
//! tableau readout is used as a fallback; such solves never seed warm
//! starts.)
//!
//! # Warm starts
//!
//! [`Workspace::solve_warm`] (and `Problem::solve_warm_with`) remembers the
//! optimal basis of previous solves, keyed by problem shape (variable
//! count and the per-row relation pattern). When the next problem has the
//! same shape — the adjacent-grid-point and per-fade-draw case, where only
//! the numeric coefficients moved — the previous basis is *priced* against
//! the new data: one small LU factorisation instead of a full two-phase
//! simplex run. The basis is accepted only when it is optimal for the new
//! data **with strict margins** (every basic variable ≥ 1e-7, every
//! nonbasic reduced cost ≤ −1e-7): under those conditions the optimal
//! basis is provably unique, so the accepted answer cannot depend on
//! *which* history proposed the basis — a hard requirement for the
//! workspace-wide guarantee that batch results are bit-identical at every
//! worker count, where the scheduler hands workers nondeterministic slices
//! of the grid. Anything short of the strict test falls back to the cold
//! two-phase path, which re-seeds the stored basis. `solve_warm` is
//! therefore an optimisation, never a semantic change: it returns exactly
//! what [`Problem::solve_with`](crate::Problem::solve_with) would.

use crate::error::LpError;
use crate::problem::{Relation, Row};
use crate::stats;

/// Numerical tolerance for reduced costs, ratio tests and feasibility.
const TOL: f64 = 1e-9;
/// Hard pivot budget; Bland's rule terminates long before this on any sane
/// input, so hitting it signals numerical breakdown.
const MAX_PIVOTS: usize = 100_000;
/// Strict-nondegeneracy margin on basic-variable values gating warm-basis
/// acceptance (see the module docs): every basic variable must clear zero
/// by this much for the previous basis to be reused.
const WARM_PRIMAL_MARGIN: f64 = 1e-7;
/// Strict margin on reduced costs for warm-basis acceptance.
const WARM_DUAL_MARGIN: f64 = 1e-7;
/// LU pivot threshold below which the canonical factorisation is declared
/// singular (warm candidates are rejected; cold extraction falls back to
/// the tableau readout).
const SINGULAR_TOL: f64 = 1e-11;
/// Retained warm-start slots (distinct problem shapes) per workspace.
const WARM_SLOTS: usize = 8;
/// After this many consecutive warm rejections a slot cools down and is
/// only re-priced every [`WARM_RETRY_PERIOD`]th solve of its shape.
const WARM_REJECT_LIMIT: u32 = 4;
/// Retry cadence of a cooled-down slot.
const WARM_RETRY_PERIOD: u32 = 16;

/// An optimal LP solution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Solution {
    /// Optimal values of the decision variables (structural variables only,
    /// in the order they were declared).
    pub x: Vec<f64>,
    /// Objective value at `x`, in the problem's original sense.
    pub objective: f64,
    /// Total simplex pivots across both phases (diagnostic; 0 for a solve
    /// served by the warm-start fast path).
    pub pivots: usize,
}

/// The optimal basis of a solved shape, retained for warm starts.
#[derive(Debug, Clone)]
struct WarmSlot {
    /// Structural variable count of the shape.
    nstruct: usize,
    /// Effective (RHS-sign-normalised) relation per row.
    rels: Vec<Relation>,
    /// Optimal basis columns, sorted ascending.
    basis: Vec<usize>,
    /// Consecutive rejected attempts since the last acceptance — drives
    /// the cool-down that stops paying for pricing a basis that keeps
    /// being rejected (e.g. a structurally degenerate shape). Affects
    /// *timing only*: acceptance is semantics-preserving, so skipping an
    /// attempt can never change a result.
    reject_streak: u32,
    /// Attempt counter used to retry occasionally while cooling down.
    tries: u32,
}

/// Reusable solver scratch memory.
///
/// A default-constructed workspace is empty; buffers grow to fit the first
/// problem solved through it and are reused (not shrunk) afterwards. One
/// workspace serves any number of sequential solves of any sizes; it is
/// `Send`, so batch drivers can move it into worker threads. Beyond the
/// scratch buffers it caches the optimal bases of recent problem shapes
/// for [`Workspace::solve_warm`].
#[derive(Debug, Default)]
pub struct Workspace {
    /// Flat row-major tableau, `nrows × (ncols + 1)` (last column: RHS).
    a: Vec<f64>,
    /// Basic variable (column index) of each surviving row.
    basis: Vec<usize>,
    /// Original row index of each surviving tableau row (phase 1 may drop
    /// redundant rows).
    row_ids: Vec<usize>,
    /// Phase-2 reduced-cost row.
    obj: Vec<f64>,
    /// Phase-1 reduced-cost row.
    w: Vec<f64>,
    /// Per-row effective relation after RHS sign normalisation.
    rels: Vec<Relation>,
    /// Per-row RHS sign flip applied during normalisation.
    flips: Vec<bool>,
    /// Per-row slack/surplus column (`usize::MAX` if none).
    aux_col: Vec<usize>,
    /// Per-row slack/surplus coefficient (+1 slack, −1 surplus).
    aux_sign: Vec<f64>,
    /// Negated objective scratch for minimisation.
    neg_obj: Vec<f64>,
    /// Canonical-extraction scratch: basis matrix (row-major m×m) and its
    /// LU factors in place.
    lu: Vec<f64>,
    /// LU row permutation.
    perm: Vec<usize>,
    /// Permuted RHS / basic-solution scratch.
    xb: Vec<f64>,
    /// Simplex-multiplier scratch (`y` with `Bᵀy = c_B`).
    yrow: Vec<f64>,
    /// Objective-on-basis scratch.
    cb: Vec<f64>,
    /// Sorted basis columns scratch.
    cols: Vec<usize>,
    /// Basic-column marks, indexed by column.
    is_basic: Vec<bool>,
    /// Warm-start slots, keyed by problem shape.
    warm: Vec<WarmSlot>,
    /// Round-robin eviction cursor for the warm slots.
    warm_next: usize,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Solves `p` with the warm-start fast path enabled — identical
    /// results to [`Problem::solve_with`](crate::Problem::solve_with),
    /// faster when the problem has the same shape as a recent solve and
    /// the previous optimal basis is still (strictly) optimal.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`](crate::Problem::solve).
    pub fn solve_warm(&mut self, p: &crate::Problem) -> Result<Solution, LpError> {
        p.solve_warm_with(self)
    }
}

struct Tableau<'ws> {
    /// Flat `rows × stride` coefficient grid; the last column of each row
    /// is the RHS.
    a: &'ws mut Vec<f64>,
    /// Row width (`ncols + 1`).
    stride: usize,
    /// Basic variable (column index) of each row.
    basis: &'ws mut Vec<usize>,
    /// Original row index of each surviving tableau row.
    row_ids: &'ws mut Vec<usize>,
    /// Number of columns excluding the RHS.
    ncols: usize,
    /// Column index where artificial variables start (`== ncols` if none).
    art_start: usize,
    pivots: usize,
}

impl Tableau<'_> {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r * self.stride + self.ncols]
    }

    fn at(&self, r: usize, j: usize) -> f64 {
        self.a[r * self.stride + j]
    }

    /// Gauss–Jordan pivot on (`row`, `col`), updating `extra` objective rows
    /// alongside the constraint rows.
    fn pivot(&mut self, row: usize, col: usize, extra: &mut [&mut Vec<f64>]) {
        let s = self.stride;
        {
            let prow = &mut self.a[row * s..(row + 1) * s];
            let piv = prow[col];
            debug_assert!(piv.abs() > TOL, "pivot on near-zero element");
            let inv = 1.0 / piv;
            for v in prow.iter_mut() {
                *v *= inv;
            }
            // Make the pivot element exactly 1 to limit drift.
            prow[col] = 1.0;
        }
        let (head, rest) = self.a.split_at_mut(row * s);
        let (prow, tail) = rest.split_at_mut(s);
        for arow in head.chunks_exact_mut(s).chain(tail.chunks_exact_mut(s)) {
            let factor = arow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in arow.iter_mut().zip(prow.iter()) {
                *v -= factor * p;
            }
            arow[col] = 0.0;
        }
        for orow in extra.iter_mut() {
            let factor = orow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in orow.iter_mut().zip(prow.iter()) {
                *v -= factor * p;
            }
            orow[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Bland ratio test: smallest non-negative ratio, ties broken by the
    /// smallest basic-variable index. Returns `None` if the column is
    /// unbounded below.
    fn ratio_test(&self, col: usize) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
        for r in 0..self.basis.len() {
            let coef = self.at(r, col);
            if coef > TOL {
                let ratio = self.rhs(r) / coef;
                let key = (ratio, self.basis[r]);
                match best {
                    None => best = Some((key.0, key.1, r)),
                    Some((br, bv, _)) => {
                        if ratio < br - TOL || (ratio < br + TOL && self.basis[r] < bv) {
                            best = Some((key.0, key.1, r));
                        }
                    }
                }
            }
        }
        best.map(|(_, _, r)| r)
    }

    /// Runs simplex iterations on the objective row `obj` (reduced-cost
    /// convention: entry `< -TOL` means the column improves a maximization).
    /// Columns `>= col_limit` are barred from entering.
    fn optimize(&mut self, obj: &mut Vec<f64>, col_limit: usize) -> Result<(), LpError> {
        loop {
            if self.pivots > MAX_PIVOTS {
                return Err(LpError::IterationLimit);
            }
            // Bland entering rule: smallest index with negative reduced cost.
            let entering = (0..col_limit).find(|&j| obj[j] < -TOL);
            let Some(col) = entering else {
                return Ok(());
            };
            let Some(row) = self.ratio_test(col) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col, &mut [&mut *obj]);
        }
    }

    /// Drops tableau row `r` (redundant after phase 1), shifting the rows
    /// below it down in place.
    fn remove_row(&mut self, r: usize) {
        let s = self.stride;
        let n = self.basis.len();
        self.a.copy_within((r + 1) * s..n * s, r * s);
        self.a.truncate((n - 1) * s);
        self.basis.remove(r);
        self.row_ids.remove(r);
    }
}

/// LU-factors the row-major `m × m` matrix `lu` in place with partial
/// pivoting (row swaps recorded in `perm`). Returns `false` when a pivot
/// falls below [`SINGULAR_TOL`].
fn lu_factor(lu: &mut [f64], m: usize, perm: &mut Vec<usize>) -> bool {
    perm.clear();
    perm.extend(0..m);
    for k in 0..m {
        let mut p = k;
        let mut best = lu[k * m + k].abs();
        for r in k + 1..m {
            let v = lu[r * m + k].abs();
            if v > best {
                best = v;
                p = r;
            }
        }
        if best < SINGULAR_TOL {
            return false;
        }
        if p != k {
            for j in 0..m {
                lu.swap(p * m + j, k * m + j);
            }
            perm.swap(p, k);
        }
        let piv = lu[k * m + k];
        for r in k + 1..m {
            let f = lu[r * m + k] / piv;
            lu[r * m + k] = f;
            for j in k + 1..m {
                lu[r * m + j] -= f * lu[k * m + j];
            }
        }
    }
    true
}

/// Solves `B x = b` given the LU factors of the row-permuted `B`.
fn lu_solve(lu: &[f64], m: usize, perm: &[usize], b: &[f64], x: &mut Vec<f64>) {
    x.clear();
    x.extend(perm.iter().map(|&i| b[i]));
    for r in 0..m {
        for k in 0..r {
            x[r] -= lu[r * m + k] * x[k];
        }
    }
    for r in (0..m).rev() {
        for k in r + 1..m {
            x[r] -= lu[r * m + k] * x[k];
        }
        x[r] /= lu[r * m + r];
    }
}

/// Solves `Bᵀ y = c` given the LU factors of the row-permuted `B`
/// (`P·B = L·U` ⇒ `Bᵀ = Uᵀ·Lᵀ·P`): forward through `Uᵀ`, back through
/// `Lᵀ`, then undo the permutation. `tmp` is caller-provided scratch.
fn lu_solve_transposed(
    lu: &[f64],
    m: usize,
    perm: &[usize],
    c: &[f64],
    tmp: &mut Vec<f64>,
    y: &mut Vec<f64>,
) {
    // z := solve Uᵀ z = c (Uᵀ is lower triangular with U's diagonal).
    tmp.clear();
    tmp.resize(m, 0.0);
    for r in 0..m {
        let mut v = c[r];
        for k in 0..r {
            v -= lu[k * m + r] * tmp[k];
        }
        tmp[r] = v / lu[r * m + r];
    }
    // w := solve Lᵀ w = z in place (Lᵀ is unit upper triangular).
    for r in (0..m).rev() {
        for k in r + 1..m {
            let delta = lu[k * m + r] * tmp[k];
            tmp[r] -= delta;
        }
    }
    // y[perm[i]] = w[i].
    y.clear();
    y.resize(m, 0.0);
    for (i, &p) in perm.iter().enumerate() {
        y[p] = tmp[i];
    }
}

/// Classifies rows and computes the auxiliary-column layout, filling the
/// workspace's `rels`, `flips`, `aux_col` and `aux_sign`. Returns
/// `(n_slack, n_art)`.
fn classify_rows(rows: &[Row], nstruct: usize, ws: &mut Workspace) -> (usize, usize) {
    let mut n_slack = 0;
    let mut n_art = 0;
    ws.rels.clear();
    ws.flips.clear();
    ws.aux_col.clear();
    ws.aux_sign.clear();
    let slack_start = nstruct;
    for r in rows {
        let flip = r.rhs < 0.0;
        let mut rel = r.rel;
        if flip {
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match rel {
            Relation::Le => {
                ws.aux_col.push(slack_start + n_slack);
                ws.aux_sign.push(1.0);
                n_slack += 1;
            }
            Relation::Ge => {
                ws.aux_col.push(slack_start + n_slack);
                ws.aux_sign.push(-1.0);
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => {
                ws.aux_col.push(usize::MAX);
                ws.aux_sign.push(0.0);
                n_art += 1;
            }
        }
        ws.rels.push(rel);
        ws.flips.push(flip);
    }
    (n_slack, n_art)
}

/// Canonically extracts the structural solution for the final basis by
/// solving `B x_B = b` from the original data (see the module docs).
/// Returns `false` if the basis matrix is near-singular, in which case the
/// caller falls back to the tableau readout.
fn canonical_extract(rows: &[Row], nstruct: usize, ws: &mut Workspace, x: &mut Vec<f64>) -> bool {
    let m = ws.basis.len();
    let mut cols = std::mem::take(&mut ws.cols);
    cols.clear();
    cols.extend_from_slice(&ws.basis);
    cols.sort_unstable();
    let mut lu = std::mem::take(&mut ws.lu);
    let mut perm = std::mem::take(&mut ws.perm);
    let mut rhs = std::mem::take(&mut ws.cb);
    let mut xb = std::mem::take(&mut ws.xb);
    let ok = (|| {
        lu.clear();
        lu.resize(m * m, 0.0);
        rhs.clear();
        rhs.resize(m, 0.0);
        for ti in 0..m {
            let orig = ws.row_ids[ti];
            let sign = if ws.flips[orig] { -1.0 } else { 1.0 };
            for (k, &col) in cols.iter().enumerate() {
                lu[ti * m + k] = if col < nstruct {
                    sign * rows[orig].coeffs[col]
                } else if ws.aux_col[orig] == col {
                    ws.aux_sign[orig]
                } else {
                    0.0
                };
            }
            rhs[ti] = sign * rows[orig].rhs;
        }
        if !lu_factor(&mut lu, m, &mut perm) {
            return false;
        }
        lu_solve(&lu, m, &perm, &rhs, &mut xb);
        x.clear();
        x.resize(nstruct, 0.0);
        for (k, &col) in cols.iter().enumerate() {
            if col < nstruct {
                x[col] = xb[k].max(0.0);
            }
        }
        true
    })();
    ws.cols = cols;
    ws.lu = lu;
    ws.perm = perm;
    ws.cb = rhs;
    ws.xb = xb;
    ok
}

/// Attempts to serve the solve from warm slot `slot_idx`: prices the
/// remembered basis against the new data and accepts only a strictly
/// nondegenerate optimum (see the module docs for why strictness is what
/// makes this deterministic). On success fills `out` and returns `true`.
fn warm_attempt(
    c: &[f64],
    rows: &[Row],
    nstruct: usize,
    art_start: usize,
    slot_idx: usize,
    ws: &mut Workspace,
    out: &mut Solution,
) -> bool {
    let m = rows.len();
    if ws.warm[slot_idx].basis.len() != m {
        return false;
    }
    let mut cols = std::mem::take(&mut ws.cols);
    cols.clear();
    cols.extend_from_slice(&ws.warm[slot_idx].basis);
    let mut lu = std::mem::take(&mut ws.lu);
    let mut perm = std::mem::take(&mut ws.perm);
    let mut rhs = std::mem::take(&mut ws.cb);
    let mut xb = std::mem::take(&mut ws.xb);
    let mut y = std::mem::take(&mut ws.yrow);
    let mut tmp = std::mem::take(&mut ws.w);
    let mut is_basic = std::mem::take(&mut ws.is_basic);
    let accepted = (|| {
        // Build the basis matrix and the normalised RHS from the new data.
        lu.clear();
        lu.resize(m * m, 0.0);
        rhs.clear();
        rhs.resize(m, 0.0);
        for (i, row) in rows.iter().enumerate() {
            let sign = if ws.flips[i] { -1.0 } else { 1.0 };
            for (k, &col) in cols.iter().enumerate() {
                lu[i * m + k] = if col < nstruct {
                    sign * row.coeffs[col]
                } else if ws.aux_col[i] == col {
                    ws.aux_sign[i]
                } else {
                    0.0
                };
            }
            rhs[i] = sign * row.rhs;
        }
        if !lu_factor(&mut lu, m, &mut perm) {
            return false;
        }
        // Primal: x_B = B⁻¹b, every basic variable strictly positive.
        lu_solve(&lu, m, &perm, &rhs, &mut xb);
        if xb.iter().any(|&v| v < WARM_PRIMAL_MARGIN) {
            return false;
        }
        // Dual: y from Bᵀy = c_B, then strict reduced costs on every
        // nonbasic structural and slack/surplus column.
        rhs.clear();
        for &col in &cols {
            rhs.push(if col < nstruct { c[col] } else { 0.0 });
        }
        lu_solve_transposed(&lu, m, &perm, &rhs, &mut tmp, &mut y);
        is_basic.clear();
        is_basic.resize(art_start.max(1), false);
        for &col in &cols {
            is_basic[col] = true;
        }
        for j in 0..nstruct {
            if is_basic[j] {
                continue;
            }
            let mut d = c[j];
            for (i, row) in rows.iter().enumerate() {
                let sign = if ws.flips[i] { -1.0 } else { 1.0 };
                d -= y[i] * sign * row.coeffs[j];
            }
            if d > -WARM_DUAL_MARGIN {
                return false;
            }
        }
        for (i, &yi) in y.iter().enumerate().take(m) {
            let col = ws.aux_col[i];
            if col == usize::MAX || is_basic[col] {
                continue;
            }
            if -yi * ws.aux_sign[i] > -WARM_DUAL_MARGIN {
                return false;
            }
        }
        // Accept: the basis is the unique optimum — extract from x_B, the
        // same canonical computation the cold path finishes with.
        out.x.clear();
        out.x.resize(nstruct, 0.0);
        for (k, &col) in cols.iter().enumerate() {
            if col < nstruct {
                out.x[col] = xb[k].max(0.0);
            }
        }
        out.objective = c.iter().zip(&out.x).map(|(ci, xi)| ci * xi).sum();
        out.pivots = 0;
        true
    })();
    ws.cols = cols;
    ws.lu = lu;
    ws.perm = perm;
    ws.cb = rhs;
    ws.xb = xb;
    ws.yrow = y;
    ws.w = tmp;
    ws.is_basic = is_basic;
    accepted
}

/// Stores (or refreshes) the warm slot for the just-solved shape.
fn store_warm(rows_len: usize, nstruct: usize, art_start: usize, ws: &mut Workspace) {
    if ws.row_ids.len() != rows_len {
        return; // redundant rows were dropped; shape bookkeeping is off
    }
    if ws.basis.iter().any(|&b| b >= art_start) {
        return; // an artificial survived at level zero
    }
    ws.cols.clear();
    ws.cols.extend_from_slice(&ws.basis);
    ws.cols.sort_unstable();
    if let Some(slot) = ws
        .warm
        .iter_mut()
        .find(|s| s.nstruct == nstruct && s.rels == ws.rels)
    {
        if slot.basis != ws.cols {
            // A new optimal basis: the old rejection history is stale.
            slot.basis.clear();
            slot.basis.extend_from_slice(&ws.cols);
            slot.reject_streak = 0;
        }
        return;
    }
    let slot = WarmSlot {
        nstruct,
        rels: ws.rels.clone(),
        basis: ws.cols.clone(),
        reject_streak: 0,
        tries: 0,
    };
    if ws.warm.len() < WARM_SLOTS {
        ws.warm.push(slot);
    } else {
        let i = ws.warm_next % WARM_SLOTS;
        ws.warm[i] = slot;
        ws.warm_next = ws.warm_next.wrapping_add(1);
    }
}

/// Solves `maximize c·x  s.t. rows, x ≥ 0` into `out`, using `ws` for all
/// scratch memory. With `try_warm`, a remembered basis for this problem
/// shape is priced first (results are identical either way).
pub(crate) fn solve_max_into(
    c: &[f64],
    rows: &[Row],
    ws: &mut Workspace,
    try_warm: bool,
    out: &mut Solution,
) -> Result<(), LpError> {
    // Deterministic fault injection: an armed `LpIterationLimit` site
    // makes this solve report its iteration budget as exhausted before
    // any pivoting, exercising the callers' degradation paths. The hook
    // is a single thread-local read when no fault scope is active.
    if bcc_num::faults::should_inject(bcc_num::faults::FaultSite::LpIterationLimit) {
        stats::record_solve(0, false, false);
        return Err(LpError::IterationLimit);
    }

    let nstruct = c.len();
    let (n_slack, n_art) = classify_rows(rows, nstruct, ws);

    let slack_start = nstruct;
    let art_start = nstruct + n_slack;
    let ncols = nstruct + n_slack + n_art;
    let m = rows.len();

    // ---- Warm-start fast path.
    let mut warm_attempted = false;
    if try_warm {
        let slot_idx = ws
            .warm
            .iter()
            .position(|s| s.nstruct == nstruct && s.rels == ws.rels);
        if let Some(idx) = slot_idx {
            let slot = &mut ws.warm[idx];
            slot.tries = slot.tries.wrapping_add(1);
            let cooling = slot.reject_streak >= WARM_REJECT_LIMIT
                && !slot.tries.is_multiple_of(WARM_RETRY_PERIOD);
            if !cooling {
                // An armed `LpWarmReject` site behaves exactly like an
                // organic pricing reject: the attempt is skipped, the
                // slot's reject streak grows toward cooldown, and the
                // solve proceeds cold. Warm starts never change results,
                // so this perturbs only the performance envelope.
                if bcc_num::faults::should_inject(bcc_num::faults::FaultSite::LpWarmReject) {
                    ws.warm[idx].reject_streak = ws.warm[idx].reject_streak.saturating_add(1);
                } else {
                    warm_attempted = true;
                    if warm_attempt(c, rows, nstruct, art_start, idx, ws, out) {
                        ws.warm[idx].reject_streak = 0;
                        stats::record_solve(0, true, true);
                        return Ok(());
                    }
                    ws.warm[idx].reject_streak = ws.warm[idx].reject_streak.saturating_add(1);
                }
            }
        }
    }

    // ---- Cold two-phase simplex.
    let stride = ncols + 1;
    ws.a.clear();
    ws.a.resize(m * stride, 0.0);
    ws.basis.clear();
    ws.basis.resize(m, usize::MAX);
    ws.row_ids.clear();
    ws.row_ids.extend(0..m);
    let mut t = Tableau {
        a: &mut ws.a,
        stride,
        basis: &mut ws.basis,
        row_ids: &mut ws.row_ids,
        ncols,
        art_start,
        pivots: 0,
    };

    let mut next_art = art_start;
    for (i, row) in rows.iter().enumerate() {
        let flip = row.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        let trow = &mut t.a[i * stride..(i + 1) * stride];
        for (dst, &src) in trow[..nstruct].iter_mut().zip(&row.coeffs) {
            *dst = sign * src;
        }
        trow[ncols] = sign * row.rhs;
        match ws.rels[i] {
            Relation::Le => {
                trow[ws.aux_col[i]] = 1.0;
                t.basis[i] = ws.aux_col[i];
            }
            Relation::Ge => {
                trow[ws.aux_col[i]] = -1.0;
                trow[next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                trow[next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
        }
    }
    debug_assert!(slack_start <= art_start);

    // ---- Phase 1: minimise the artificial sum (skip if no artificials).
    if n_art > 0 {
        // Maximize -(sum of artificials): reduced-cost row starts as
        // +1 on artificial columns, then price out the artificial basis.
        let w = &mut ws.w;
        w.clear();
        w.resize(ncols + 1, 0.0);
        for wj in w[art_start..ncols].iter_mut() {
            *wj = 1.0;
        }
        for r in 0..t.basis.len() {
            if t.basis[r] >= art_start {
                let trow = &t.a[r * stride..(r + 1) * stride];
                for (wj, aj) in w.iter_mut().zip(trow.iter()) {
                    *wj -= aj;
                }
            }
        }
        // Artificials may not re-enter during phase 1 either.
        if let Err(e) = t.optimize(w, art_start) {
            stats::record_solve(t.pivots, warm_attempted, false);
            return Err(e);
        }
        let infeas = -w[ncols];
        if infeas > 1e-7 {
            stats::record_solve(t.pivots, warm_attempted, false);
            return Err(LpError::Infeasible);
        }
        // Drive remaining zero-level artificials out of the basis.
        let mut r = 0;
        while r < t.basis.len() {
            if t.basis[r] >= t.art_start {
                // Find any non-artificial column with a nonzero entry.
                let col = (0..t.art_start).find(|&j| t.at(r, j).abs() > 1e-7);
                match col {
                    Some(j) => {
                        t.pivot(r, j, &mut [&mut *w]);
                        r += 1;
                    }
                    None => {
                        // Redundant row: every structural/slack coefficient is
                        // ~0 and the RHS is ~0 (else phase 1 would be
                        // positive). Drop it in place.
                        t.remove_row(r);
                    }
                }
            } else {
                r += 1;
            }
        }
    }

    // ---- Phase 2: optimise the true objective.
    let obj = &mut ws.obj;
    obj.clear();
    obj.resize(ncols + 1, 0.0);
    for (j, &cj) in c.iter().enumerate() {
        obj[j] = -cj;
    }
    // Price out basic variables with nonzero objective coefficients.
    for r in 0..t.basis.len() {
        let b = t.basis[r];
        if obj[b] != 0.0 {
            let factor = obj[b];
            let trow = &t.a[r * stride..(r + 1) * stride];
            for (oj, aj) in obj.iter_mut().zip(trow.iter()) {
                *oj -= factor * aj;
            }
            obj[b] = 0.0;
        }
    }
    let phase2 = t.optimize(obj, t.art_start);
    let pivots = t.pivots;
    if let Err(e) = phase2 {
        stats::record_solve(pivots, warm_attempted, false);
        return Err(e);
    }

    // Canonical extraction from the final basis (tableau readout only as
    // a numerical fallback — see the module docs).
    let mut x = std::mem::take(&mut out.x);
    if canonical_extract(rows, nstruct, ws, &mut x) {
        store_warm(m, nstruct, art_start, ws);
    } else {
        x.clear();
        x.resize(nstruct, 0.0);
        for (r, &b) in ws.basis.iter().enumerate() {
            if b < nstruct {
                x[b] = ws.a[r * stride + ncols].max(0.0);
            }
        }
    }
    out.objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    out.x = x;
    out.pivots = pivots;
    stats::record_solve(pivots, warm_attempted, false);
    Ok(())
}

/// Solves a program of either sense into `out` (the internal entry point
/// behind every `Problem::solve*` method): minimisation is mapped onto the
/// maximisation core via a sign flip on the objective, using workspace
/// scratch so the hot path stays allocation-free.
pub(crate) fn solve_sense_into(
    sense: crate::problem::Sense,
    c: &[f64],
    rows: &[Row],
    ws: &mut Workspace,
    try_warm: bool,
    out: &mut Solution,
) -> Result<(), LpError> {
    match sense {
        crate::problem::Sense::Maximize => solve_max_into(c, rows, ws, try_warm, out),
        crate::problem::Sense::Minimize => {
            let mut neg = std::mem::take(&mut ws.neg_obj);
            neg.clear();
            neg.extend(c.iter().map(|v| -v));
            let res = solve_max_into(&neg, rows, ws, try_warm, out);
            ws.neg_obj = neg;
            res?;
            out.objective = -out.objective;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Relation};
    use crate::Workspace;

    #[test]
    fn injected_iteration_limit_fires_only_under_a_scope() {
        use bcc_num::faults::{FaultPlan, FaultScope, FaultSite};
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        // No scope: solves normally.
        assert!(p.solve().is_ok());
        let plan = FaultPlan::new(3).with(FaultSite::LpIterationLimit, 1.0, 1);
        {
            let _scope = FaultScope::enter(&plan, 0);
            assert_eq!(p.solve().unwrap_err(), crate::LpError::IterationLimit);
            // Trigger budget spent: the retry within the same scope is
            // allowed through and reaches the true optimum.
            let s = p.solve().expect("retry after injected limit");
            assert!((s.objective - 2.0).abs() < 1e-9);
        }
        // Scope dropped: back to normal.
        assert!(p.solve().is_ok());
    }

    #[test]
    fn forced_warm_reject_changes_no_results() {
        use bcc_num::faults::{FaultPlan, FaultScope, FaultSite};
        let mut ws = Workspace::new();
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 4.0);
        p.subject_to(&[0.0, 2.0], Relation::Le, 12.0);
        p.subject_to(&[3.0, 2.0], Relation::Le, 18.0);
        let baseline = p.solve_warm_with(&mut ws).expect("feasible");
        let plan = FaultPlan::new(5).with(FaultSite::LpWarmReject, 1.0, u32::MAX);
        let _scope = FaultScope::enter(&plan, 9);
        for _ in 0..4 {
            // Every warm attempt is force-rejected; the cold solve must
            // produce bitwise-identical solutions.
            let s = p.solve_warm_with(&mut ws).expect("feasible");
            assert_eq!(s.objective.to_bits(), baseline.objective.to_bits());
            assert_eq!(s.x[0].to_bits(), baseline.x[0].to_bits());
            assert_eq!(s.x[1].to_bits(), baseline.x[1].to_bits());
            assert!(s.pivots > 0, "forced reject means a cold solve");
        }
    }

    #[test]
    fn pivots_reported() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().expect("feasible");
        assert!(s.pivots >= 2);
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solution_is_feasible_and_optimal_on_simplex_face() {
        // maximize x0 on the probability simplex of dim 4.
        let mut p = Problem::maximize(&[1.0, 0.0, 0.0, 0.0]);
        p.subject_to(&[1.0, 1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 1.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_relations_mixed() {
        // maximize x + y s.t. x + y <= 10, x >= 2, y = 3 → x=7,y=3.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 10.0);
        p.subject_to(&[1.0, 0.0], Relation::Ge, 2.0);
        p.subject_to(&[0.0, 1.0], Relation::Eq, 3.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ge_bound_binds_from_below() {
        // minimize x s.t. x >= 4.25.
        let mut p = Problem::minimize(&[1.0]);
        p.subject_to(&[1.0], Relation::Ge, 4.25);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 4.25).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // maximize x s.t. x - y = 0, y <= 2 → x = 2.
        let mut p = Problem::maximize(&[1.0, 0.0]);
        p.subject_to(&[1.0, -1.0], Relation::Eq, 0.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 2.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh_solves() {
        // Solving problems of different sizes through one workspace must
        // give identical results to fresh per-solve workspaces.
        let mut ws = Workspace::new();
        let problems: Vec<Problem> = (1..6)
            .map(|k| {
                let n = k + 1;
                let mut p = Problem::maximize(&vec![1.0; n]);
                p.subject_to(&vec![1.0; n], Relation::Eq, k as f64);
                for j in 0..n {
                    let mut row = vec![0.0; n];
                    row[j] = 1.0;
                    p.subject_to(&row, Relation::Le, 1.0);
                }
                p
            })
            .collect();
        // Interleave growing and shrinking problem sizes.
        for &i in &[0usize, 4, 1, 3, 0, 2, 4, 0] {
            let reused = problems[i].solve_with(&mut ws).expect("feasible");
            let fresh = problems[i].solve().expect("feasible");
            assert_eq!(reused.x, fresh.x);
            assert_eq!(reused.objective, fresh.objective);
        }
    }

    #[test]
    fn workspace_reuse_after_infeasible_and_redundant_rows() {
        let mut ws = Workspace::new();
        let mut bad = Problem::maximize(&[1.0]);
        bad.subject_to(&[1.0], Relation::Le, 1.0);
        bad.subject_to(&[1.0], Relation::Ge, 2.0);
        assert!(bad.solve_with(&mut ws).is_err());

        // Redundant equalities shrink the tableau mid-solve; the workspace
        // must recover for the next problem.
        let mut red = Problem::maximize(&[1.0, 1.0]);
        red.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        red.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        let s = red.solve_with(&mut ws).expect("feasible");
        assert!((s.objective - 1.0).abs() < 1e-9);

        let mut ok = Problem::maximize(&[2.0]);
        ok.subject_to(&[1.0], Relation::Le, 3.0);
        let s = ok.solve_with(&mut ws).expect("feasible");
        assert!((s.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn warm_solve_identical_to_cold_across_perturbations() {
        // A sweep-shaped sequence: same structure, drifting coefficients.
        // solve_warm must agree with a cold solve bit for bit at every
        // step, whether it hit the warm path or not.
        let mut warm_ws = Workspace::new();
        for k in 0..200 {
            let a = 1.0 + 0.01 * k as f64;
            let b = 2.0 - 0.005 * k as f64;
            let mut p = Problem::maximize(&[1.0, 1.0, 0.0, 0.0]);
            p.subject_to(&[1.0, 0.0, -a, 0.0], Relation::Le, 0.0);
            p.subject_to(&[0.0, 1.0, 0.0, -b], Relation::Le, 0.0);
            p.subject_to(&[0.0, 0.0, 1.0, 1.0], Relation::Eq, 1.0);
            let warm = p.solve_warm_with(&mut warm_ws).expect("feasible");
            let cold = p.solve().expect("feasible");
            assert_eq!(warm.x, cold.x, "step {k}");
            assert_eq!(warm.objective, cold.objective, "step {k}");
        }
    }

    #[test]
    fn warm_path_actually_fires_on_repeats() {
        let before = crate::stats::snapshot();
        let mut ws = Workspace::new();
        for k in 0..50 {
            let cap = 1.0 + 0.02 * k as f64;
            let mut p = Problem::maximize(&[2.0, 1.0]);
            p.subject_to(&[1.0, 0.0], Relation::Le, cap);
            p.subject_to(&[0.0, 1.0], Relation::Le, 2.0 * cap);
            p.subject_to(&[1.0, 1.0], Relation::Le, 2.5 * cap);
            let s = p.solve_warm_with(&mut ws).expect("feasible");
            // x = cap binds its own cap, y fills the joint cap: 2·cap + 1.5·cap.
            assert!((s.objective - 3.5 * cap).abs() < 1e-9);
        }
        let d = crate::stats::snapshot().delta_since(&before);
        assert!(d.warm_hits >= 40, "warm hits {} too low", d.warm_hits);
    }

    #[test]
    fn warm_shape_change_falls_back_cleanly() {
        let mut ws = Workspace::new();
        let mut p1 = Problem::maximize(&[1.0]);
        p1.subject_to(&[1.0], Relation::Le, 1.0);
        let s1 = p1.solve_warm_with(&mut ws).unwrap();
        assert!((s1.objective - 1.0).abs() < 1e-9);
        // Different shape (relation pattern): must not reuse the basis.
        let mut p2 = Problem::maximize(&[1.0]);
        p2.subject_to(&[1.0], Relation::Ge, 2.0);
        p2.subject_to(&[1.0], Relation::Le, 5.0);
        let s2 = p2.solve_warm_with(&mut ws).unwrap();
        assert!((s2.objective - 5.0).abs() < 1e-9);
        // And back again.
        let s1b = p1.solve_warm_with(&mut ws).unwrap();
        assert_eq!(s1.x, s1b.x);
    }

    #[test]
    fn warm_after_infeasible_recovers() {
        let mut ws = Workspace::new();
        let mut good = Problem::maximize(&[1.0]);
        good.subject_to(&[1.0], Relation::Le, 3.0);
        assert!(good.solve_warm_with(&mut ws).is_ok());
        let mut bad = Problem::maximize(&[1.0]);
        bad.subject_to(&[1.0], Relation::Le, 1.0);
        bad.subject_to(&[1.0], Relation::Ge, 2.0);
        assert!(bad.solve_warm_with(&mut ws).is_err());
        let again = good.solve_warm_with(&mut ws).unwrap();
        assert!((again.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn warm_history_does_not_leak_into_results() {
        // Two workspaces with *different* histories must produce identical
        // results on the same problem — the determinism contract that lets
        // batch drivers warm-start inside a racy scheduler.
        let mut ws_a = Workspace::new();
        let mut ws_b = Workspace::new();
        for k in (0..40).rev() {
            let cap = 0.5 + 0.1 * k as f64;
            let mut warmup = Problem::maximize(&[1.0, 2.0]);
            warmup.subject_to(&[1.0, 0.0], Relation::Le, cap);
            warmup.subject_to(&[0.0, 1.0], Relation::Le, 2.0 * cap);
            let _ = warmup.solve_warm_with(&mut ws_a);
        }
        let mut probe = Problem::maximize(&[1.0, 2.0]);
        probe.subject_to(&[1.0, 0.0], Relation::Le, 0.77);
        probe.subject_to(&[0.0, 1.0], Relation::Le, 1.23);
        let a = probe.solve_warm_with(&mut ws_a).unwrap();
        let b = probe.solve_warm_with(&mut ws_b).unwrap();
        assert_eq!(a.x, b.x);
        assert_eq!(a.objective, b.objective);
    }
}
