//! Two-phase dense primal simplex with Bland's rule.
//!
//! The implementation follows the classic tableau formulation:
//!
//! 1. Normalise every row to a non-negative right-hand side.
//! 2. Add a slack variable per `≤` row, a surplus variable per `≥` row, and
//!    an artificial variable per `≥`/`=` row.
//! 3. **Phase 1** minimises the sum of artificials; a positive optimum means
//!    the program is infeasible. Artificials stuck in the basis at level
//!    zero are pivoted out (or their rows dropped as redundant).
//! 4. **Phase 2** optimises the true objective with artificial columns
//!    barred from entering.
//!
//! Bland's smallest-index rule guarantees termination even on degenerate
//! problems (e.g. the Beale cycling example in the crate tests), at the cost
//! of a few extra pivots — irrelevant at this problem scale.

use crate::error::LpError;
use crate::problem::{Relation, Row};

/// Numerical tolerance for reduced costs, ratio tests and feasibility.
const TOL: f64 = 1e-9;
/// Hard pivot budget; Bland's rule terminates long before this on any sane
/// input, so hitting it signals numerical breakdown.
const MAX_PIVOTS: usize = 100_000;

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the decision variables (structural variables only,
    /// in the order they were declared).
    pub x: Vec<f64>,
    /// Objective value at `x`, in the problem's original sense.
    pub objective: f64,
    /// Total simplex pivots across both phases (diagnostic).
    pub pivots: usize,
}

struct Tableau {
    /// `rows × cols` coefficient grid; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Number of columns excluding the RHS.
    ncols: usize,
    /// Column index where artificial variables start (`== ncols` if none).
    art_start: usize,
    pivots: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.ncols]
    }

    /// Gauss–Jordan pivot on (`row`, `col`), updating `extra` objective rows
    /// alongside the constraint rows.
    fn pivot(&mut self, row: usize, col: usize, extra: &mut [Vec<f64>]) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > TOL, "pivot on near-zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        // Make the pivot element exactly 1 to limit drift.
        self.a[row][col] = 1.0;
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in arow.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            arow[col] = 0.0;
        }
        for orow in extra.iter_mut() {
            let factor = orow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in orow.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            orow[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Bland ratio test: smallest non-negative ratio, ties broken by the
    /// smallest basic-variable index. Returns `None` if the column is
    /// unbounded below.
    fn ratio_test(&self, col: usize) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
        for r in 0..self.basis.len() {
            let coef = self.a[r][col];
            if coef > TOL {
                let ratio = self.rhs(r) / coef;
                let key = (ratio, self.basis[r]);
                match best {
                    None => best = Some((key.0, key.1, r)),
                    Some((br, bv, _)) => {
                        if ratio < br - TOL || (ratio < br + TOL && self.basis[r] < bv) {
                            best = Some((key.0, key.1, r));
                        }
                    }
                }
            }
        }
        best.map(|(_, _, r)| r)
    }

    /// Runs simplex iterations on the objective row `obj` (reduced-cost
    /// convention: entry `< -TOL` means the column improves a maximization).
    /// Columns `>= col_limit` are barred from entering.
    fn optimize(&mut self, obj: &mut Vec<f64>, col_limit: usize) -> Result<(), LpError> {
        loop {
            if self.pivots > MAX_PIVOTS {
                return Err(LpError::IterationLimit);
            }
            // Bland entering rule: smallest index with negative reduced cost.
            let entering = (0..col_limit).find(|&j| obj[j] < -TOL);
            let Some(col) = entering else {
                return Ok(());
            };
            let Some(row) = self.ratio_test(col) else {
                return Err(LpError::Unbounded);
            };
            let mut extra = [std::mem::take(obj)];
            self.pivot(row, col, &mut extra);
            *obj = std::mem::replace(&mut extra[0], Vec::new());
        }
    }
}

/// Solves `maximize c·x  s.t. rows, x ≥ 0`.
pub(crate) fn solve_max(c: &[f64], rows: &[Row]) -> Result<Solution, LpError> {
    let nstruct = c.len();
    // Classify rows and count auxiliary columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    struct Norm {
        coeffs: Vec<f64>,
        rhs: f64,
        rel: Relation,
    }
    let norm: Vec<Norm> = rows
        .iter()
        .map(|r| {
            let mut coeffs = r.coeffs.clone();
            let mut rhs = r.rhs;
            let mut rel = r.rel;
            if rhs < 0.0 {
                for v in &mut coeffs {
                    *v = -*v;
                }
                rhs = -rhs;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
            Norm { coeffs, rhs, rel }
        })
        .collect();

    let slack_start = nstruct;
    let art_start = nstruct + n_slack;
    let ncols = nstruct + n_slack + n_art;
    let m = norm.len();

    let mut t = Tableau {
        a: vec![vec![0.0; ncols + 1]; m],
        basis: vec![usize::MAX; m],
        ncols,
        art_start,
        pivots: 0,
    };

    let mut next_slack = slack_start;
    let mut next_art = art_start;
    for (i, row) in norm.iter().enumerate() {
        t.a[i][..nstruct].copy_from_slice(&row.coeffs);
        t.a[i][ncols] = row.rhs;
        match row.rel {
            Relation::Le => {
                t.a[i][next_slack] = 1.0;
                t.basis[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                t.a[i][next_slack] = -1.0;
                next_slack += 1;
                t.a[i][next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                t.a[i][next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    // ---- Phase 1: minimise the artificial sum (skip if no artificials).
    if n_art > 0 {
        // Maximize -(sum of artificials): reduced-cost row starts as
        // +1 on artificial columns, then price out the artificial basis.
        let mut w = vec![0.0; ncols + 1];
        for j in art_start..ncols {
            w[j] = 1.0;
        }
        for (r, &b) in t.basis.iter().enumerate() {
            if b >= art_start {
                let arow = t.a[r].clone();
                for (wj, aj) in w.iter_mut().zip(&arow) {
                    *wj -= aj;
                }
            }
        }
        // Artificials may not re-enter during phase 1 either.
        t.optimize(&mut w, art_start)?;
        let infeas = -w[ncols];
        if infeas > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining zero-level artificials out of the basis.
        let mut r = 0;
        while r < t.basis.len() {
            if t.basis[r] >= t.art_start {
                // Find any non-artificial column with a nonzero entry.
                let col = (0..t.art_start).find(|&j| t.a[r][j].abs() > 1e-7);
                match col {
                    Some(j) => {
                        let mut extra: [Vec<f64>; 1] = [std::mem::take(&mut w)];
                        t.pivot(r, j, &mut extra);
                        w = std::mem::replace(&mut extra[0], Vec::new());
                        r += 1;
                    }
                    None => {
                        // Redundant row: every structural/slack coefficient is
                        // ~0 and the RHS is ~0 (else phase 1 would be
                        // positive). Drop it.
                        t.a.remove(r);
                        t.basis.remove(r);
                    }
                }
            } else {
                r += 1;
            }
        }
    }

    // ---- Phase 2: optimise the true objective.
    let mut obj = vec![0.0; ncols + 1];
    for (j, &cj) in c.iter().enumerate() {
        obj[j] = -cj;
    }
    // Price out basic variables with nonzero objective coefficients.
    for (r, &b) in t.basis.iter().enumerate() {
        if obj[b] != 0.0 {
            let factor = obj[b];
            let arow = t.a[r].clone();
            for (oj, aj) in obj.iter_mut().zip(&arow) {
                *oj -= factor * aj;
            }
            obj[b] = 0.0;
        }
    }
    t.optimize(&mut obj, t.art_start)?;

    // Extract structural solution.
    let mut x = vec![0.0; nstruct];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < nstruct {
            x[b] = t.rhs(r).max(0.0);
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(Solution {
        x,
        objective,
        pivots: t.pivots,
    })
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Relation};

    #[test]
    fn pivots_reported() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().expect("feasible");
        assert!(s.pivots >= 2);
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solution_is_feasible_and_optimal_on_simplex_face() {
        // maximize x0 on the probability simplex of dim 4.
        let mut p = Problem::maximize(&[1.0, 0.0, 0.0, 0.0]);
        p.subject_to(&[1.0, 1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 1.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_relations_mixed() {
        // maximize x + y s.t. x + y <= 10, x >= 2, y = 3 → x=7,y=3.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 10.0);
        p.subject_to(&[1.0, 0.0], Relation::Ge, 2.0);
        p.subject_to(&[0.0, 1.0], Relation::Eq, 3.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ge_bound_binds_from_below() {
        // minimize x s.t. x >= 4.25.
        let mut p = Problem::minimize(&[1.0]);
        p.subject_to(&[1.0], Relation::Ge, 4.25);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 4.25).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // maximize x s.t. x - y = 0, y <= 2 → x = 2.
        let mut p = Problem::maximize(&[1.0, 0.0]);
        p.subject_to(&[1.0, -1.0], Relation::Eq, 0.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 2.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 2.0).abs() < 1e-9);
    }
}
