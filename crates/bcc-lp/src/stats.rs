//! Global, lock-free solver counters.
//!
//! The batch drivers in this workspace fan LP solves across worker
//! threads whose private [`Workspace`](crate::Workspace)s are created and
//! dropped inside the parallel region, so per-workspace counters would be
//! invisible to the caller. Instead the solver increments a small set of
//! process-wide relaxed atomics — **once per solve**, not per pivot, so
//! the cost is a few nanoseconds against a microsecond-scale solve — and
//! diagnostics like `bench-report` read deltas around a workload:
//!
//! ```
//! use bcc_lp::{Problem, Relation};
//!
//! let before = bcc_lp::stats::snapshot();
//! let mut p = Problem::maximize(&[1.0]);
//! p.subject_to(&[1.0], Relation::Le, 2.0);
//! p.solve().unwrap();
//! let delta = bcc_lp::stats::snapshot().delta_since(&before);
//! assert_eq!(delta.solves, 1);
//! ```
//!
//! The counters are monotone over the process lifetime (no reset — a
//! racy reset would corrupt concurrent deltas); consumers subtract
//! snapshots. Relaxed ordering means a snapshot taken *while* solves are
//! in flight on other threads may miss their in-progress increments;
//! deltas around a completed workload on the calling thread are exact.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static SOLVES: AtomicU64 = AtomicU64::new(0);
static PIVOTS: AtomicU64 = AtomicU64::new(0);
static WARM_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static WARM_HITS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide solver counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpStats {
    /// Completed solves (successful or not), warm and cold.
    pub solves: u64,
    /// Total simplex pivots across all solves (warm hits contribute 0).
    pub pivots: u64,
    /// Warm-start candidates evaluated (a matching basis existed).
    pub warm_attempts: u64,
    /// Warm-start candidates accepted — the solve skipped the simplex
    /// entirely and priced the previous optimal basis instead.
    pub warm_hits: u64,
}

impl LpStats {
    /// Counter increments since `earlier` (wrapping, so stale snapshots
    /// cannot panic).
    pub fn delta_since(&self, earlier: &LpStats) -> LpStats {
        LpStats {
            solves: self.solves.wrapping_sub(earlier.solves),
            pivots: self.pivots.wrapping_sub(earlier.pivots),
            warm_attempts: self.warm_attempts.wrapping_sub(earlier.warm_attempts),
            warm_hits: self.warm_hits.wrapping_sub(earlier.warm_hits),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> LpStats {
    LpStats {
        solves: SOLVES.load(Relaxed),
        pivots: PIVOTS.load(Relaxed),
        warm_attempts: WARM_ATTEMPTS.load(Relaxed),
        warm_hits: WARM_HITS.load(Relaxed),
    }
}

/// Records one completed solve (called once per solve by the simplex).
pub(crate) fn record_solve(pivots: usize, warm_attempted: bool, warm_hit: bool) {
    SOLVES.fetch_add(1, Relaxed);
    if pivots > 0 {
        PIVOTS.fetch_add(pivots as u64, Relaxed);
    }
    if warm_attempted {
        WARM_ATTEMPTS.fetch_add(1, Relaxed);
    }
    if warm_hit {
        WARM_HITS.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_wrapping_and_componentwise() {
        let a = LpStats {
            solves: 5,
            pivots: 100,
            warm_attempts: 2,
            warm_hits: 1,
        };
        let b = LpStats {
            solves: 9,
            pivots: 130,
            warm_attempts: 6,
            warm_hits: 2,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.solves, 4);
        assert_eq!(d.pivots, 30);
        assert_eq!(d.warm_attempts, 4);
        assert_eq!(d.warm_hits, 1);
        // Wrapping: a stale "later" snapshot must not panic.
        let _ = a.delta_since(&b);
    }

    #[test]
    fn counters_move_on_solves() {
        use crate::{Problem, Relation};
        let before = snapshot();
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 1.0);
        p.solve().unwrap();
        let d = snapshot().delta_since(&before);
        assert!(d.solves >= 1);
        assert!(d.pivots >= 1);
    }
}
