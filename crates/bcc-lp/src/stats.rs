//! Global, lock-free solver counters.
//!
//! The batch drivers in this workspace fan LP solves across worker
//! threads whose private [`Workspace`](crate::Workspace)s are created and
//! dropped inside the parallel region, so per-workspace counters would be
//! invisible to the caller. Instead the solver increments a small set of
//! process-wide relaxed atomics — **once per solve**, not per pivot, so
//! the cost is a few nanoseconds against a microsecond-scale solve — and
//! diagnostics like `bench-report` read deltas around a workload:
//!
//! ```
//! use bcc_lp::{Problem, Relation};
//!
//! let before = bcc_lp::stats::snapshot();
//! let mut p = Problem::maximize(&[1.0]);
//! p.subject_to(&[1.0], Relation::Le, 2.0);
//! p.solve().unwrap();
//! let delta = bcc_lp::stats::snapshot().delta_since(&before);
//! assert_eq!(delta.solves, 1);
//! ```
//!
//! The counters are monotone over the process lifetime (no reset — a
//! racy reset would corrupt concurrent deltas); consumers subtract
//! snapshots. Relaxed ordering means a snapshot taken *while* solves are
//! in flight on other threads may miss their in-progress increments;
//! deltas around a completed workload on the calling thread are exact.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static SOLVES: AtomicU64 = AtomicU64::new(0);
static PIVOTS: AtomicU64 = AtomicU64::new(0);
static WARM_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static WARM_HITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Calling-thread twins of the global counters (see
    /// [`local_snapshot`]): each solve increments both, so per-thread
    /// deltas are immune to solves racing in from other threads.
    static LOCAL: Cell<LpStats> = const { Cell::new(LpStats::zero()) };
}

/// A snapshot of the process-wide solver counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpStats {
    /// Completed solves (successful or not), warm and cold.
    pub solves: u64,
    /// Total simplex pivots across all solves (warm hits contribute 0).
    pub pivots: u64,
    /// Warm-start candidates evaluated (a matching basis existed).
    pub warm_attempts: u64,
    /// Warm-start candidates accepted — the solve skipped the simplex
    /// entirely and priced the previous optimal basis instead.
    pub warm_hits: u64,
}

impl LpStats {
    /// The all-zero snapshot (`const` so it can seed a thread-local cell).
    pub const fn zero() -> LpStats {
        LpStats {
            solves: 0,
            pivots: 0,
            warm_attempts: 0,
            warm_hits: 0,
        }
    }

    /// Counter increments since `earlier` (wrapping, so stale snapshots
    /// cannot panic).
    pub fn delta_since(&self, earlier: &LpStats) -> LpStats {
        LpStats {
            solves: self.solves.wrapping_sub(earlier.solves),
            pivots: self.pivots.wrapping_sub(earlier.pivots),
            warm_attempts: self.warm_attempts.wrapping_sub(earlier.warm_attempts),
            warm_hits: self.warm_hits.wrapping_sub(earlier.warm_hits),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> LpStats {
    LpStats {
        solves: SOLVES.load(Relaxed),
        pivots: PIVOTS.load(Relaxed),
        warm_attempts: WARM_ATTEMPTS.load(Relaxed),
        warm_hits: WARM_HITS.load(Relaxed),
    }
}

/// Reads the calling thread's private counter values.
///
/// The global [`snapshot`] is process-wide, so a delta taken around a
/// workload also counts solves performed concurrently by *other* threads
/// — under `cargo test`'s default parallelism, assertions on global
/// deltas race. This snapshot counts only solves performed **on the
/// calling thread** since it started, making in-process assertions
/// exact without `--test-threads=1`. Pin the measured workload to one
/// worker (e.g. `Scenario::threads(1)` — the serial path of
/// `bcc_num::par` runs inline on the caller) so every solve lands on
/// this thread; solves fanned to spawned workers are counted in *their*
/// thread-locals, not here.
pub fn local_snapshot() -> LpStats {
    LOCAL.with(Cell::get)
}

/// Runs `f` and returns its result together with the calling thread's
/// counter delta across the call — the race-free scoped form of
/// [`local_snapshot`] the bench gate's in-process tests are built on:
///
/// ```
/// use bcc_lp::{Problem, Relation};
///
/// let (_, delta) = bcc_lp::stats::scoped(|| {
///     let mut p = Problem::maximize(&[1.0]);
///     p.subject_to(&[1.0], Relation::Le, 2.0);
///     p.solve().unwrap()
/// });
/// assert_eq!(delta.solves, 1);
/// ```
pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, LpStats) {
    let before = local_snapshot();
    let result = f();
    (result, local_snapshot().delta_since(&before))
}

/// Records one completed solve (called once per solve by the simplex).
pub(crate) fn record_solve(pivots: usize, warm_attempted: bool, warm_hit: bool) {
    SOLVES.fetch_add(1, Relaxed);
    if pivots > 0 {
        PIVOTS.fetch_add(pivots as u64, Relaxed);
    }
    if warm_attempted {
        WARM_ATTEMPTS.fetch_add(1, Relaxed);
    }
    if warm_hit {
        WARM_HITS.fetch_add(1, Relaxed);
    }
    LOCAL.with(|c| {
        let s = c.get();
        c.set(LpStats {
            solves: s.solves.wrapping_add(1),
            pivots: s.pivots.wrapping_add(pivots as u64),
            warm_attempts: s.warm_attempts.wrapping_add(u64::from(warm_attempted)),
            warm_hits: s.warm_hits.wrapping_add(u64::from(warm_hit)),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_wrapping_and_componentwise() {
        let a = LpStats {
            solves: 5,
            pivots: 100,
            warm_attempts: 2,
            warm_hits: 1,
        };
        let b = LpStats {
            solves: 9,
            pivots: 130,
            warm_attempts: 6,
            warm_hits: 2,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.solves, 4);
        assert_eq!(d.pivots, 30);
        assert_eq!(d.warm_attempts, 4);
        assert_eq!(d.warm_hits, 1);
        // Wrapping: a stale "later" snapshot must not panic.
        let _ = a.delta_since(&b);
    }

    #[test]
    fn counters_move_on_solves() {
        use crate::{Problem, Relation};
        let before = snapshot();
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 1.0);
        p.solve().unwrap();
        let d = snapshot().delta_since(&before);
        assert!(d.solves >= 1);
        assert!(d.pivots >= 1);
    }

    fn one_solve() {
        use crate::{Problem, Relation};
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 1.0);
        p.solve().unwrap();
    }

    #[test]
    fn scoped_delta_is_exact_despite_concurrent_solves() {
        // A noisy peer thread hammers the solver while the scoped
        // measurement runs; the thread-local delta must still count
        // exactly the calling thread's own solves.
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Relaxed) {
                    one_solve();
                }
            });
            let ((), d) = scoped(|| {
                for _ in 0..7 {
                    one_solve();
                }
            });
            stop.store(true, Relaxed);
            assert_eq!(d.solves, 7, "scoped counts exactly this thread's solves");
            assert!(d.pivots >= 7);
            assert_eq!(d.warm_attempts, 0, "plain Problem::solve never warm-starts");
        });
    }

    #[test]
    fn local_snapshot_ignores_other_threads() {
        let before = local_snapshot();
        std::thread::scope(|scope| {
            scope.spawn(one_solve).join().unwrap();
        });
        assert_eq!(
            local_snapshot().delta_since(&before),
            LpStats::zero(),
            "peer-thread solves must not leak into this thread's counters"
        );
    }
}
