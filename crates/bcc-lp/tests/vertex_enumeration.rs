//! Property test: for random two-variable LPs, the simplex optimum must
//! match exact vertex enumeration (every vertex of a 2-D polyhedron is the
//! intersection of two constraint boundaries, including the axes).

use bcc_lp::{LpError, Problem, Relation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Line {
    a: f64,
    b: f64,
    rhs: f64,
}

/// Solves the 2x2 system a1 x + b1 y = c1, a2 x + b2 y = c2.
fn intersect(l1: &Line, l2: &Line) -> Option<(f64, f64)> {
    let det = l1.a * l2.b - l2.a * l1.b;
    if det.abs() < 1e-9 {
        return None;
    }
    let x = (l1.rhs * l2.b - l2.rhs * l1.b) / det;
    let y = (l1.a * l2.rhs - l2.a * l1.rhs) / det;
    Some((x, y))
}

fn feasible(x: f64, y: f64, cons: &[Line]) -> bool {
    x >= -1e-7 && y >= -1e-7 && cons.iter().all(|l| l.a * x + l.b * y <= l.rhs + 1e-6)
}

/// Brute-force optimum over all candidate vertices; `None` if the region is
/// empty or no vertex exists (then the LP is unbounded or trivial).
fn brute_force(obj: (f64, f64), cons: &[Line]) -> Option<f64> {
    let mut lines: Vec<Line> = cons.to_vec();
    // Axes x >= 0, y >= 0 expressed as boundaries.
    lines.push(Line {
        a: 1.0,
        b: 0.0,
        rhs: 0.0,
    });
    lines.push(Line {
        a: 0.0,
        b: 1.0,
        rhs: 0.0,
    });
    let mut best: Option<f64> = None;
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            if let Some((x, y)) = intersect(&lines[i], &lines[j]) {
                if feasible(x, y, cons) {
                    let v = obj.0 * x + obj.1 * y;
                    best = Some(best.map_or(v, |b: f64| b.max(v)));
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]
    #[test]
    fn simplex_matches_vertex_enumeration(
        c0 in -5f64..5.0,
        c1 in -5f64..5.0,
        rows in prop::collection::vec((0.05f64..5.0, 0.05f64..5.0, 0.5f64..20.0), 1..6),
    ) {
        // Constraints a x + b y <= rhs with a,b > 0 guarantee boundedness.
        let cons: Vec<Line> = rows
            .iter()
            .map(|&(a, b, rhs)| Line { a, b, rhs })
            .collect();
        let mut p = Problem::maximize(&[c0, c1]);
        for l in &cons {
            p.subject_to(&[l.a, l.b], Relation::Le, l.rhs);
        }
        let sol = p.solve();
        let expected = brute_force((c0, c1), &cons).expect("origin is always feasible");
        match sol {
            Ok(s) => {
                prop_assert!(
                    (s.objective - expected).abs() < 1e-6,
                    "simplex {} vs brute force {}",
                    s.objective,
                    expected
                );
                // Returned point must itself be feasible.
                prop_assert!(feasible(s.x[0], s.x[1], &cons));
            }
            Err(e) => prop_assert!(false, "unexpected LP error: {e}"),
        }
    }

    #[test]
    fn mixed_relations_never_violate(
        c0 in -3f64..3.0,
        c1 in -3f64..3.0,
        le_rhs in 1f64..10.0,
        ge_rhs in 0.0f64..0.9,
    ) {
        // x + y <= le_rhs, x + y >= ge_rhs*le_rhs: feasible band.
        let mut p = Problem::maximize(&[c0, c1]);
        p.subject_to(&[1.0, 1.0], Relation::Le, le_rhs);
        p.subject_to(&[1.0, 1.0], Relation::Ge, ge_rhs * le_rhs);
        let s = p.solve().expect("band is feasible");
        let sum = s.x[0] + s.x[1];
        prop_assert!(sum <= le_rhs + 1e-7);
        prop_assert!(sum >= ge_rhs * le_rhs - 1e-7);
    }

    #[test]
    fn equality_simplex_always_feasible(
        c in prop::collection::vec(-5f64..5.0, 2..7),
    ) {
        // maximize c·x over the probability simplex: optimum = max c_i
        // clamped below at 0 is not needed because sum must be 1 → optimum
        // = max(c).
        let mut p = Problem::maximize(&c);
        p.subject_to(&vec![1.0; c.len()], Relation::Eq, 1.0);
        let s = p.solve().expect("simplex is feasible");
        let expected = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((s.objective - expected).abs() < 1e-7);
        let total: f64 = s.x.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_band_detected(lo in 5f64..10.0, hi in 0.5f64..4.0) {
        // x + y >= lo and x + y <= hi with hi < lo is infeasible.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Ge, lo);
        p.subject_to(&[1.0, 1.0], Relation::Le, hi);
        prop_assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }
}
