//! Property test: the warm-start fast path is **semantics-free**.
//!
//! `Problem::solve_warm_with` must return exactly — bit for bit — what a
//! cold `Problem::solve_with` returns, for every problem in a sequence,
//! regardless of the warm history accumulated in the workspace. This is
//! the contract that lets the batch drivers warm-start inside a
//! work-stealing scheduler without giving up bit-identical results at
//! every worker count: a solve's answer may never depend on which
//! problems the workspace saw before it.
//!
//! The generated sequences mimic the workspace's real LPs — sum-rate and
//! max–min programs over drifting capacity coefficients — because those
//! are the shapes whose previous basis keeps being re-priced; shape
//! changes and occasional infeasible programs are mixed in to exercise
//! the fallback paths.

use bcc_lp::{Problem, Relation, Workspace};
use proptest::prelude::*;

/// A sweep-shaped sum-rate LP: `max Ra + Rb` over
/// `(Ra, Rb, Δ1, Δ2)` with per-phase capacities and a time budget.
fn sum_rate_lp(caps: &[f64; 4], budget: f64) -> Problem {
    let mut p = Problem::maximize(&[1.0, 1.0, 0.0, 0.0]);
    p.subject_to(&[1.0, 0.0, -caps[0], 0.0], Relation::Le, 0.0);
    p.subject_to(&[1.0, 0.0, 0.0, -caps[1]], Relation::Le, 0.0);
    p.subject_to(&[0.0, 1.0, -caps[2], 0.0], Relation::Le, 0.0);
    p.subject_to(&[0.0, 1.0, 0.0, -caps[3]], Relation::Le, 0.0);
    p.subject_to(&[0.0, 0.0, 1.0, 1.0], Relation::Le, budget);
    p
}

/// A max–min-shaped LP with an equality row and `≥` floors, so warm
/// sequences also cross shapes that need artificial variables.
fn floored_lp(caps: &[f64; 2], floor: f64) -> Problem {
    let mut p = Problem::maximize(&[1.0, 1.0, 0.0]);
    p.subject_to(&[1.0, 0.0, -caps[0]], Relation::Le, 0.0);
    p.subject_to(&[0.0, 1.0, -caps[1]], Relation::Le, 0.0);
    p.subject_to(&[0.0, 0.0, 1.0], Relation::Eq, 1.0);
    p.subject_to(&[1.0, 0.0, 0.0], Relation::Ge, floor);
    p
}

fn assert_bitwise_equal(warm: &bcc_lp::Solution, cold: &bcc_lp::Solution, step: usize) {
    assert_eq!(
        warm.x.len(),
        cold.x.len(),
        "step {step}: solution arity diverged"
    );
    for (i, (w, c)) in warm.x.iter().zip(&cold.x).enumerate() {
        assert_eq!(
            w.to_bits(),
            c.to_bits(),
            "step {step}: x[{i}] diverged: warm {w:.17e} vs cold {c:.17e}"
        );
    }
    assert_eq!(
        warm.objective.to_bits(),
        cold.objective.to_bits(),
        "step {step}: objective diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn warm_equals_cold_over_drifting_sequences(
        base in proptest::collection::vec(0.05f64..8.0, 4),
        drift in proptest::collection::vec(-0.02f64..0.02, 4),
        steps in 10usize..60,
    ) {
        let mut warm_ws = Workspace::new();
        for k in 0..steps {
            let caps = [
                (base[0] + drift[0] * k as f64).max(1e-3),
                (base[1] + drift[1] * k as f64).max(1e-3),
                (base[2] + drift[2] * k as f64).max(1e-3),
                (base[3] + drift[3] * k as f64).max(1e-3),
            ];
            let p = sum_rate_lp(&caps, 1.0);
            let warm = p.solve_warm_with(&mut warm_ws).expect("feasible");
            let cold = p.solve_with(&mut Workspace::new()).expect("feasible");
            assert_bitwise_equal(&warm, &cold, k);
        }
    }

    #[test]
    fn warm_equals_cold_across_shape_switches(
        caps in proptest::collection::vec(0.05f64..6.0, 6),
        floor in 0.0f64..0.5,
    ) {
        // Alternate between two shapes through one workspace: the slot
        // cache must keep them apart and never leak a basis across.
        let mut warm_ws = Workspace::new();
        for k in 0..24 {
            let t = 1.0 + 0.01 * k as f64;
            let a = sum_rate_lp(
                &[caps[0] * t, caps[1] * t, caps[2] * t, caps[3] * t],
                1.0,
            );
            let b = floored_lp(&[caps[4] * t, caps[5] * t], floor);
            for p in [&a, &b] {
                let warm = p.solve_warm_with(&mut warm_ws);
                let cold = p.solve_with(&mut Workspace::new());
                match (warm, cold) {
                    (Ok(w), Ok(c)) => assert_bitwise_equal(&w, &c, k),
                    (Err(we), Err(ce)) => prop_assert_eq!(we, ce),
                    (w, c) => panic!("step {k}: outcome diverged: {w:?} vs {c:?}"),
                }
            }
        }
    }

    #[test]
    fn warm_minimization_equals_cold(
        c0 in 0.1f64..5.0,
        c1 in 0.1f64..5.0,
        lo in 0.5f64..4.0,
    ) {
        let mut ws = Workspace::new();
        for k in 0..16 {
            let lo_k = lo + 0.05 * k as f64;
            let mut p = Problem::minimize(&[c0, c1]);
            p.subject_to(&[1.0, 1.0], Relation::Ge, lo_k);
            p.subject_to(&[1.0, 0.0], Relation::Le, 10.0 * lo_k);
            p.subject_to(&[0.0, 1.0], Relation::Le, 10.0 * lo_k);
            let warm = p.solve_warm_with(&mut ws).expect("feasible");
            let cold = p.solve_with(&mut Workspace::new()).expect("feasible");
            assert_bitwise_equal(&warm, &cold, k);
        }
    }
}
