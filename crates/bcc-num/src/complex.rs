//! A minimal complex-number type for baseband signal processing.
//!
//! The workspace's offline dependency list does not include `num-complex`,
//! so this module provides the small subset of complex arithmetic the
//! channel simulators need: the four arithmetic operators, conjugation,
//! magnitude, phase, and a couple of constructors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use bcc_num::Complex64;
///
/// let h = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((h.re).abs() < 1e-12);
/// assert!((h.im - 2.0).abs() < 1e-12);
/// assert!((h.norm_sqr() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`norm`]).
    ///
    /// [`norm`]: Complex64::norm
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow of the squared components.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase (argument) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns components that are NaN or infinite when `z == 0`, matching
    /// IEEE-754 division semantics.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z + z, Complex64::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let p = a * b;
        assert!(approx_eq(p.re, 1.0 * -3.0 - 2.0 * 0.5, 1e-12));
        assert!(approx_eq(p.im, 1.0 * 0.5 + 2.0 * -3.0, 1e-12));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex64::new(0.7, -1.3);
        let b = Complex64::new(2.0, 5.0);
        let q = a / b * b;
        assert!(approx_eq(q.re, a.re, 1e-12));
        assert!(approx_eq(q.im, a.im, 1e-12));
    }

    #[test]
    fn norm_and_conjugate() {
        let z = Complex64::new(3.0, 4.0);
        assert!(approx_eq(z.norm(), 5.0, 1e-12));
        assert!(approx_eq(z.norm_sqr(), 25.0, 1e-12));
        let zz = z * z.conj();
        assert!(approx_eq(zz.re, 25.0, 1e-12));
        assert!(approx_eq(zz.im, 0.0, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.5, 1.1);
        assert!(approx_eq(z.norm(), 2.5, 1e-12));
        assert!(approx_eq(z.arg(), 1.1, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex64::I * Complex64::I;
        assert!(approx_eq(m.re, -1.0, 1e-15));
        assert!(approx_eq(m.im, 0.0, 1e-15));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn inverse_of_zero_is_not_finite() {
        assert!(!Complex64::ZERO.inv().is_finite());
    }
}
