//! Decibel ⇄ linear conversions.
//!
//! The paper's evaluation section (Section IV) specifies all powers and
//! channel gains in decibels (`P = 15 dB`, `G_ab = 0 dB`, …). Mixing up a dB
//! figure with a linear power ratio is the classic bug in this kind of code,
//! so the [`Db`] newtype makes the unit explicit at the type level.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A power ratio expressed in decibels.
///
/// `Db(x)` represents the linear power ratio `10^(x/10)`.
///
/// ```
/// use bcc_num::Db;
///
/// assert_eq!(Db::new(0.0).to_linear(), 1.0);
/// assert!((Db::new(10.0).to_linear() - 10.0).abs() < 1e-12);
/// assert!((Db::from_linear(100.0).value() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

impl Db {
    /// Creates a dB value.
    pub const fn new(db: f64) -> Self {
        Db(db)
    }

    /// Converts a linear power ratio to dB.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is negative (a power ratio cannot be negative;
    /// `0.0` maps to `-inf` dB which is allowed).
    pub fn from_linear(linear: f64) -> Self {
        assert!(
            linear >= 0.0,
            "linear power ratio must be non-negative, got {linear}"
        );
        Db(10.0 * linear.log10())
    }

    /// The raw dB value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to a linear power ratio `10^(dB/10)`.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts to a linear *amplitude* ratio `10^(dB/20)`.
    pub fn to_amplitude(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

// dB values add when the underlying linear quantities multiply, which is
// exactly how cascaded gains compose; exposing `Add`/`Sub` (not `Mul`) keeps
// the operator semantics physical.
impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dB", self.0)
    }
}

impl From<Db> for f64 {
    fn from(db: Db) -> f64 {
        db.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn zero_db_is_unity() {
        assert_eq!(Db::new(0.0).to_linear(), 1.0);
        assert_eq!(Db::new(0.0).to_amplitude(), 1.0);
    }

    #[test]
    fn linear_roundtrip() {
        for &x in &[0.001, 0.5, 1.0, 3.1622776601683795, 100.0] {
            let db = Db::from_linear(x);
            assert!(approx_eq(db.to_linear(), x, 1e-12), "roundtrip {x}");
        }
    }

    #[test]
    fn negative_db_attenuates() {
        let g = Db::new(-7.0).to_linear();
        assert!(g < 1.0 && g > 0.0);
        assert!(approx_eq(g, 0.19952623149688797, 1e-12));
    }

    #[test]
    fn addition_is_linear_multiplication() {
        let a = Db::new(3.0);
        let b = Db::new(7.0);
        assert!(approx_eq(
            (a + b).to_linear(),
            a.to_linear() * b.to_linear(),
            1e-12
        ));
        assert!(approx_eq(
            (a - b).to_linear(),
            a.to_linear() / b.to_linear(),
            1e-12
        ));
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let d = Db::new(13.0);
        assert!(approx_eq(d.to_amplitude().powi(2), d.to_linear(), 1e-12));
    }

    #[test]
    fn zero_linear_is_minus_infinity() {
        assert_eq!(Db::from_linear(0.0).value(), f64::NEG_INFINITY);
        assert_eq!(Db::from_linear(0.0).to_linear(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_linear_panics() {
        let _ = Db::from_linear(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Db::new(15.0).to_string(), "15 dB");
    }
}
