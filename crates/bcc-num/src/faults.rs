//! Deterministic, seed-driven fault injection.
//!
//! Production serving stacks earn their robustness claims by *injecting*
//! the failures they promise to survive — solver iteration limits, cache
//! corruption, worker panics — and proving the degraded behaviour. Most
//! chaos harnesses pay for that with irreproducibility; this workspace
//! does not have to, because every result is already a pure function of
//! its inputs and a seed. This module extends the same discipline to the
//! faults themselves.
//!
//! # Model
//!
//! A [`FaultPlan`] assigns each [`FaultSite`] a probability and a
//! per-scope trigger budget. Drivers wrap each *work item* (a serve
//! query, a sweep grid point) in a [`FaultScope`] keyed by a stable token
//! — a quantized-query hash, a grid index — and the hooks compiled into
//! the lower layers ask [`should_inject`] / [`site_fated`] whether to
//! fire. Every decision is a pure function of
//! `(plan seed, site, token, draw index)`, mixed SplitMix64-style exactly
//! like the workspace's `mix_seed` trial streams, so an injection
//! schedule is **bit-reproducible across thread counts, batch sizes and
//! replays**: the same plan over the same query stream poisons the same
//! items, every time, on any machine.
//!
//! Two query styles exist because they answer different questions:
//!
//! * [`should_inject`] draws a fresh decision each call (the scope keeps a
//!   per-site draw counter), for sites that model *transient* faults — a
//!   solver call that hits its iteration limit once and succeeds on
//!   retry.
//! * [`site_fated`] evaluates draw 0 once per scope and caches it, for
//!   sites that model *item-bound* faults — a grid point whose lane is
//!   poisoned, a cache key whose entries always corrupt. Fated sites are
//!   what keep chaos runs invariant under batching: whichever code path
//!   re-examines the item reaches the same verdict.
//!
//! When no scope is active (or the plan is empty) every hook answers
//! "no" after a single thread-local read, so fault-free runs execute the
//! exact pre-existing instruction stream.
//!
//! ```
//! use bcc_num::faults::{self, FaultPlan, FaultSite, FaultScope};
//!
//! let plan = FaultPlan::new(7).with(FaultSite::LpIterationLimit, 0.5, 1);
//! let fired: Vec<bool> = (0..8u64)
//!     .map(|item| {
//!         let _scope = FaultScope::enter(&plan, item);
//!         faults::should_inject(FaultSite::LpIterationLimit)
//!     })
//!     .collect();
//! // Same plan, same tokens -> same schedule, bit-for-bit.
//! let again: Vec<bool> = (0..8u64)
//!     .map(|item| {
//!         let _scope = FaultScope::enter(&plan, item);
//!         faults::should_inject(FaultSite::LpIterationLimit)
//!     })
//!     .collect();
//! assert_eq!(fired, again);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can be injected. Each site is compiled into exactly one
/// seam of the stack; the table below is the contract the chaos suites
/// test against.
///
/// | Site | Hook | Observable effect |
/// |---|---|---|
/// | `LpIterationLimit` | simplex solve entry | solve returns `LpError::IterationLimit` |
/// | `LpWarmReject` | warm-start gate | warm attempt skipped (cold solve; results unchanged) |
/// | `KernelPoison` | closed-form kernel entry (fated) | solve fails with an injected error; batch drivers fall back per point |
/// | `CacheEvict` | decision-cache admission (fated) | key behaves as perpetually evicted: never served from cache, never admitted |
/// | `CacheCorrupt` | decision-cache admission (fated) | entries stored with a bad checksum; reads detect and invalidate instead of serving |
/// | `WorkerPanic` | serve/solve worker item entry | the worker panics; `catch_unwind` isolation contains it to the item |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Force the flat-tableau simplex to report `IterationLimit`.
    LpIterationLimit,
    /// Force the warm-start acceptance gate to reject (cold solve).
    LpWarmReject,
    /// Poison a closed-form kernel evaluation (item-fated).
    KernelPoison,
    /// Force a decision-cache key to behave as evicted (item-fated).
    CacheEvict,
    /// Corrupt decision-cache entries for a key (item-fated; detected by
    /// the stored checksum and invalidated instead of served).
    CacheCorrupt,
    /// Panic inside a worker while processing the item.
    WorkerPanic,
}

/// Number of distinct [`FaultSite`]s.
pub const SITE_COUNT: usize = 6;

impl FaultSite {
    /// All sites, in a fixed order (the order of the per-site arrays).
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::LpIterationLimit,
        FaultSite::LpWarmReject,
        FaultSite::KernelPoison,
        FaultSite::CacheEvict,
        FaultSite::CacheCorrupt,
        FaultSite::WorkerPanic,
    ];

    fn idx(self) -> usize {
        match self {
            FaultSite::LpIterationLimit => 0,
            FaultSite::LpWarmReject => 1,
            FaultSite::KernelPoison => 2,
            FaultSite::CacheEvict => 3,
            FaultSite::CacheCorrupt => 4,
            FaultSite::WorkerPanic => 5,
        }
    }

    /// Per-site stream salt, so the draw streams of different sites under
    /// one token are decorrelated.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; fixed forever so plans replay across
        // versions.
        const SALTS: [u64; SITE_COUNT] = [
            0x9E37_79B9_7F4A_7C15,
            0xBF58_476D_1CE4_E5B9,
            0x94D0_49BB_1331_11EB,
            0xD6E8_FEB8_6659_FD93,
            0xA5A3_564D_5F87_C0E7,
            0xC2B2_AE3D_27D4_EB4F,
        ];
        SALTS[self.idx()]
    }
}

/// One site's slice of a [`FaultPlan`]: fire with `probability` on each
/// draw, at most `triggers` times per scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Per-draw firing probability in `[0, 1]`. `0.0` disables the site.
    pub probability: f64,
    /// Maximum fires per [`FaultScope`]; further draws answer `false`.
    pub triggers: u32,
}

impl SiteSpec {
    const OFF: SiteSpec = SiteSpec {
        probability: 0.0,
        triggers: 0,
    };

    fn enabled(&self) -> bool {
        self.probability > 0.0 && self.triggers > 0
    }
}

/// A seed-driven fault-injection schedule: per-[`FaultSite`] probability
/// and trigger budget, deterministic given `(seed, site, scope token,
/// draw index)`.
///
/// The empty plan ([`FaultPlan::none`], also `Default`) injects nothing
/// and is free to carry around; hooks short-circuit on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: [SiteSpec; SITE_COUNT],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: every site disabled.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            sites: [SiteSpec::OFF; SITE_COUNT],
        }
    }

    /// A plan with the given seed and every site disabled; enable sites
    /// with [`FaultPlan::with`].
    pub const fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [SiteSpec::OFF; SITE_COUNT],
        }
    }

    /// Enables `site` with the given per-draw `probability` and per-scope
    /// trigger budget.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not finite or outside `[0, 1]`.
    pub fn with(mut self, site: FaultSite, probability: f64, triggers: u32) -> Self {
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "fault probability must be finite and in [0, 1], got {probability}"
        );
        self.sites[site.idx()] = SiteSpec {
            probability,
            triggers,
        };
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec for `site`.
    pub fn site(&self, site: FaultSite) -> SiteSpec {
        self.sites[site.idx()]
    }

    /// `true` if no site can ever fire.
    pub fn is_empty(&self) -> bool {
        self.sites.iter().all(|s| !s.enabled())
    }
}

/// SplitMix64 finalizer — the same mixing discipline as the workspace's
/// per-trial `mix_seed` streams, duplicated here because `bcc-num` sits
/// below the crate that exports it.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stable per-item scope token from a stream seed and an item
/// index — the standard way for drivers whose items are indices (grid
/// points, trial numbers) to key their [`FaultScope`]s.
pub fn scope_token(stream_seed: u64, index: u64) -> u64 {
    mix(stream_seed ^ mix(index))
}

/// The uniform deviate for `(plan, site, token, draw)`, in `[0, 1)`.
fn deviate(plan: &FaultPlan, site: FaultSite, token: u64, draw: u32) -> f64 {
    let x = mix(plan.seed ^ site.salt() ^ mix(token).wrapping_add(u64::from(draw)));
    // 53 high bits -> [0, 1), the usual f64 construction.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct ScopeState {
    plan: FaultPlan,
    token: u64,
    /// Per-site draw cursor for [`should_inject`].
    draws: [u32; SITE_COUNT],
    /// Per-site fire count (enforces the trigger budget).
    fires: [u32; SITE_COUNT],
    /// Cached draw-0 verdicts for [`site_fated`].
    fated: [Option<bool>; SITE_COUNT],
}

thread_local! {
    static ACTIVE: RefCell<Vec<ScopeState>> = const { RefCell::new(Vec::new()) };
}

/// Global injection counters, per site — diagnostics only (relaxed
/// atomics; never consulted by any decision, so they cannot perturb
/// determinism).
static INJECTED: [AtomicU64; SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// RAII guard that makes `plan` the active fault context of the current
/// thread for one work item. Scopes nest (the innermost wins) and restore
/// the previous context on drop.
///
/// Entering a scope with an empty plan is cheap and makes every hook
/// answer `false`, so drivers can enter unconditionally.
#[derive(Debug)]
pub struct FaultScope {
    entered: bool,
}

impl FaultScope {
    /// Activates `plan` for the current thread, keyed by `token` (a
    /// stable identity of the work item — see [`scope_token`]).
    #[must_use = "the scope deactivates when dropped"]
    pub fn enter(plan: &FaultPlan, token: u64) -> FaultScope {
        if plan.is_empty() {
            return FaultScope { entered: false };
        }
        ACTIVE.with(|stack| {
            stack.borrow_mut().push(ScopeState {
                plan: *plan,
                token,
                draws: [0; SITE_COUNT],
                fires: [0; SITE_COUNT],
                fated: [None; SITE_COUNT],
            });
        });
        FaultScope { entered: true }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        if self.entered {
            ACTIVE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// `true` if a non-empty fault scope is active on this thread.
pub fn active() -> bool {
    ACTIVE.with(|stack| !stack.borrow().is_empty())
}

fn with_scope<R>(f: impl FnOnce(&mut ScopeState) -> R) -> Option<R> {
    ACTIVE.with(|stack| stack.borrow_mut().last_mut().map(f))
}

/// Draws the next transient-fault decision for `site` in the active
/// scope. Each call advances the site's draw cursor, so a retry after an
/// injected failure re-rolls rather than re-failing by construction.
/// Answers `false` when no scope is active, the site is disabled, or its
/// trigger budget for this scope is spent.
pub fn should_inject(site: FaultSite) -> bool {
    let fired = with_scope(|s| {
        let spec = s.plan.site(site);
        if !spec.enabled() || s.fires[site.idx()] >= spec.triggers {
            // Still advance the cursor so enabling another site never
            // shifts this one's stream.
            s.draws[site.idx()] = s.draws[site.idx()].wrapping_add(1);
            return false;
        }
        let draw = s.draws[site.idx()];
        s.draws[site.idx()] = draw.wrapping_add(1);
        if deviate(&s.plan, site, s.token, draw) < spec.probability {
            s.fires[site.idx()] += 1;
            true
        } else {
            false
        }
    })
    .unwrap_or(false);
    if fired {
        INJECTED[site.idx()].fetch_add(1, Ordering::Relaxed);
    }
    fired
}

/// The item-bound verdict for `site` in the active scope: draw 0,
/// evaluated once per scope and cached, independent of how many times or
/// from which code path it is asked. This is the query item-fated sites
/// (kernel poison, cache evict/corrupt) use, and what keeps chaos runs
/// bit-identical across batch sizes: re-examining an item cannot change
/// its fate.
pub fn site_fated(site: FaultSite) -> bool {
    with_scope(|s| {
        let spec = s.plan.site(site);
        if !spec.enabled() {
            return false;
        }
        let verdict = *s.fated[site.idx()]
            .get_or_insert_with(|| deviate(&s.plan, site, s.token, 0) < spec.probability);
        if verdict && s.fires[site.idx()] == 0 {
            s.fires[site.idx()] = 1;
            INJECTED[site.idx()].fetch_add(1, Ordering::Relaxed);
        }
        verdict
    })
    .unwrap_or(false)
}

/// Total faults injected at `site` across the process, for diagnostics
/// and bench reporting. Monotone; never read by any injection decision.
pub fn injected(site: FaultSite) -> u64 {
    INJECTED[site.idx()].load(Ordering::Relaxed)
}

/// Total faults injected across all sites.
pub fn injected_total() -> u64 {
    INJECTED.iter().map(|c| c.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, site: FaultSite, items: u64, draws: u32) -> Vec<bool> {
        let mut out = Vec::new();
        for item in 0..items {
            let _scope = FaultScope::enter(plan, item);
            for _ in 0..draws {
                out.push(should_inject(site));
            }
        }
        out
    }

    #[test]
    fn empty_plan_never_fires_and_enters_cheaply() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let _scope = FaultScope::enter(&plan, 42);
        assert!(!active());
        assert!(!should_inject(FaultSite::WorkerPanic));
        assert!(!site_fated(FaultSite::KernelPoison));
    }

    #[test]
    fn schedules_replay_bit_identically() {
        let plan = FaultPlan::new(0xBCC).with(FaultSite::LpIterationLimit, 0.3, 2);
        let a = schedule(&plan, FaultSite::LpIterationLimit, 64, 3);
        let b = schedule(&plan, FaultSite::LpIterationLimit, 64, 3);
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "p=0.3 over 192 draws should fire");
        assert!(!a.iter().all(|&f| f));
    }

    #[test]
    fn seeds_and_sites_decorrelate() {
        let p1 = FaultPlan::new(1).with(FaultSite::KernelPoison, 0.5, 8);
        let p2 = FaultPlan::new(2).with(FaultSite::KernelPoison, 0.5, 8);
        assert_ne!(
            schedule(&p1, FaultSite::KernelPoison, 128, 1),
            schedule(&p2, FaultSite::KernelPoison, 128, 1),
        );
        let both = FaultPlan::new(9).with(FaultSite::CacheEvict, 0.5, 8).with(
            FaultSite::CacheCorrupt,
            0.5,
            8,
        );
        assert_ne!(
            schedule(&both, FaultSite::CacheEvict, 128, 1),
            schedule(&both, FaultSite::CacheCorrupt, 128, 1),
        );
    }

    #[test]
    fn trigger_budget_caps_fires_per_scope() {
        let plan = FaultPlan::new(3).with(FaultSite::WorkerPanic, 1.0, 2);
        let _scope = FaultScope::enter(&plan, 0);
        assert!(should_inject(FaultSite::WorkerPanic));
        assert!(should_inject(FaultSite::WorkerPanic));
        assert!(!should_inject(FaultSite::WorkerPanic), "budget spent");
    }

    #[test]
    fn fated_verdict_is_stable_within_scope_and_across_rescopes() {
        let plan = FaultPlan::new(11).with(FaultSite::CacheCorrupt, 0.5, 1);
        let mut verdicts = Vec::new();
        for token in 0..64u64 {
            let _scope = FaultScope::enter(&plan, token);
            let first = site_fated(FaultSite::CacheCorrupt);
            // Asking again (any number of times) cannot flip the fate.
            assert_eq!(first, site_fated(FaultSite::CacheCorrupt));
            verdicts.push(first);
        }
        // Fresh scopes over the same tokens reach identical verdicts.
        for (token, &expect) in verdicts.iter().enumerate() {
            let _scope = FaultScope::enter(&plan, token as u64);
            assert_eq!(site_fated(FaultSite::CacheCorrupt), expect);
        }
        assert!(verdicts.iter().any(|&f| f));
        assert!(!verdicts.iter().all(|&f| f));
    }

    #[test]
    fn enabling_one_site_does_not_shift_anothers_stream() {
        let lone = FaultPlan::new(5).with(FaultSite::LpIterationLimit, 0.4, 8);
        let mixed = FaultPlan::new(5)
            .with(FaultSite::LpIterationLimit, 0.4, 8)
            .with(FaultSite::LpWarmReject, 1.0, 8);
        let a = schedule(&lone, FaultSite::LpIterationLimit, 64, 2);
        let b = schedule(&mixed, FaultSite::LpIterationLimit, 64, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = FaultPlan::new(1).with(FaultSite::WorkerPanic, 1.0, 8);
        let inner = FaultPlan::new(2).with(FaultSite::WorkerPanic, 0.0, 0);
        let _o = FaultScope::enter(&outer, 0);
        assert!(should_inject(FaultSite::WorkerPanic));
        {
            // `inner` has no enabled site, so it does not even push.
            let _i = FaultScope::enter(&inner, 0);
            assert!(should_inject(FaultSite::WorkerPanic), "outer still active");
        }
        assert!(should_inject(FaultSite::WorkerPanic));
    }

    #[test]
    fn probability_validation() {
        let r =
            std::panic::catch_unwind(|| FaultPlan::new(0).with(FaultSite::CacheEvict, f64::NAN, 1));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| FaultPlan::new(0).with(FaultSite::CacheEvict, 1.5, 1));
        assert!(r.is_err());
    }

    #[test]
    fn scope_token_spreads_low_entropy_indices() {
        let a = scope_token(7, 0);
        let b = scope_token(7, 1);
        assert_ne!(a, b);
        assert_ne!(a ^ b, 1, "finalized tokens differ in more than the low bit");
    }
}
