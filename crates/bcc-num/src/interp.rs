//! Piecewise-linear interpolation over sampled curves.
//!
//! Sweep binaries sample sum-rate curves on coarse grids; these helpers
//! evaluate between samples and locate sign changes (protocol crossovers)
//! without re-solving LPs.

/// Piecewise-linear interpolation of `(x, y)` samples at `x`.
///
/// Samples must be strictly increasing in `x`. Outside the range the
/// boundary value is returned (constant extrapolation — the conservative
/// choice for rate curves).
///
/// # Panics
///
/// Panics if `points` is empty or `x` values are not strictly increasing.
///
/// ```
/// let pts = [(0.0, 0.0), (2.0, 4.0)];
/// assert_eq!(bcc_num::interp::lerp(&pts, 1.0), 2.0);
/// assert_eq!(bcc_num::interp::lerp(&pts, -1.0), 0.0);
/// ```
pub fn lerp(points: &[(f64, f64)], x: f64) -> f64 {
    assert!(!points.is_empty(), "need at least one sample");
    assert!(
        points.windows(2).all(|w| w[1].0 > w[0].0),
        "x values must be strictly increasing"
    );
    if x <= points[0].0 {
        return points[0].1;
    }
    if x >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    let idx = points.partition_point(|p| p.0 <= x);
    let (x0, y0) = points[idx - 1];
    let (x1, y1) = points[idx];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// All `x` locations where the piecewise-linear interpolants of two
/// sampled curves cross (sign changes of their difference), in order.
///
/// # Panics
///
/// Panics if the grids differ or are not strictly increasing.
pub fn crossings(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "curves must share a grid");
    assert!(
        a.iter().zip(b).all(|(p, q)| p.0 == q.0),
        "curves must share a grid"
    );
    let mut out = Vec::new();
    for i in 1..a.len() {
        let d0 = a[i - 1].1 - b[i - 1].1;
        let d1 = a[i].1 - b[i].1;
        if d0 == 0.0 {
            out.push(a[i - 1].0);
            continue;
        }
        if d0.signum() != d1.signum() && d1 != 0.0 {
            // Linear root of the difference on [x0, x1].
            let t = d0 / (d0 - d1);
            out.push(a[i - 1].0 + t * (a[i].0 - a[i - 1].0));
        }
    }
    // The final sample can be an exact tie.
    if let (Some(pa), Some(pb)) = (a.last(), b.last()) {
        if pa.1 == pb.1 && a.len() > 1 {
            out.push(pa.0);
        }
    }
    out.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_hits_samples_exactly() {
        let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)];
        for &(x, y) in &pts {
            assert_eq!(lerp(&pts, x), y);
        }
        assert_eq!(lerp(&pts, 0.5), 2.0);
        assert_eq!(lerp(&pts, 1.5), 2.5);
    }

    #[test]
    fn constant_extrapolation() {
        let pts = [(0.0, 1.0), (1.0, 3.0)];
        assert_eq!(lerp(&pts, -5.0), 1.0);
        assert_eq!(lerp(&pts, 5.0), 3.0);
    }

    #[test]
    fn crossing_of_two_lines() {
        // y = x and y = 2 - x cross at x = 1.
        let grid: Vec<f64> = (0..=4).map(|i| i as f64 * 0.5).collect();
        let a: Vec<(f64, f64)> = grid.iter().map(|&x| (x, x)).collect();
        let b: Vec<(f64, f64)> = grid.iter().map(|&x| (x, 2.0 - x)).collect();
        let c = crossings(&a, &b);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_for_parallel_curves() {
        let grid: Vec<f64> = (0..=3).map(f64::from).collect();
        let a: Vec<(f64, f64)> = grid.iter().map(|&x| (x, x)).collect();
        let b: Vec<(f64, f64)> = grid.iter().map(|&x| (x, x + 1.0)).collect();
        assert!(crossings(&a, &b).is_empty());
    }

    #[test]
    fn multiple_crossings_detected() {
        // sin-like flip-flop: difference alternates sign each step.
        let a = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)];
        let b = [(0.0, 0.5), (1.0, 0.5), (2.0, 0.5), (3.0, 0.5)];
        let c = crossings(&a, &b);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_rejected() {
        let _ = lerp(&[(1.0, 0.0), (0.0, 1.0)], 0.5);
    }
}
