//! Numerical substrate for the bidirectional coded cooperation workspace.
//!
//! This crate provides the numerical building blocks that the rest of the
//! workspace is built on:
//!
//! * [`complex`] — a small, dependency-free complex-number type
//!   ([`Complex64`]) used for baseband channel gains and signals.
//! * [`db`] — decibel ⇄ linear conversions with newtypes ([`Db`]) so power
//!   ratios and dB values cannot be confused.
//! * [`special`] — special functions: `erf`/`erfc`, the Gaussian Q-function,
//!   numerically careful `log2(1+x)`.
//! * [`stats`] — streaming statistics (Welford), confidence intervals,
//!   empirical CDFs and histograms for Monte-Carlo experiments.
//! * [`quadrature`] — adaptive Simpson integration and Gauss–Laguerre rules
//!   (used for closed-form ergodic-rate cross-checks over Rayleigh fading).
//! * [`optim`] — scalar optimisation: golden-section search, bisection and
//!   grid refinement.
//! * [`seed`] — the workspace-wide deterministic seeding policy
//!   ([`seed::mix_seed`]): SplitMix64-finalised child streams shared by
//!   the topology generators and every Monte-Carlo driver.
//! * [`par`] — chunked, order-preserving data parallelism over scoped
//!   worker threads (`par_map_indexed`), the engine behind the parallel
//!   `Scenario` evaluator and Monte-Carlo drivers.
//! * [`faults`] — deterministic, seed-driven fault injection
//!   ([`faults::FaultPlan`]): the chaos schedules behind the robustness
//!   suites, bit-reproducible across threads, batch sizes and replays.
//! * [`linalg`] — a minimal dense matrix type with LU solve, used by tests
//!   and by the Blahut–Arimoto helper in `bcc-info`.
//!
//! # Example
//!
//! ```
//! use bcc_num::{Db, special::q_function};
//!
//! // 15 dB transmit SNR as a linear power ratio:
//! let snr = Db::new(15.0).to_linear();
//! assert!((snr - 31.622776601683793).abs() < 1e-12);
//!
//! // BPSK error probability at that SNR:
//! let ber = q_function((2.0 * snr).sqrt());
//! assert!(ber < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod db;
pub mod faults;
pub mod interp;
pub mod linalg;
pub mod optim;
pub mod par;
pub mod quadrature;
pub mod seed;
pub mod special;
pub mod stats;

pub use complex::Complex64;
pub use db::Db;
pub use linalg::Matrix;
pub use stats::RunningStats;

/// Default absolute tolerance used by iterative routines in this workspace.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Returns `true` if `a` and `b` are equal within absolute tolerance `tol`
/// *or* within relative tolerance `tol` (whichever is looser).
///
/// This is the comparison rule used throughout the workspace test suites.
///
/// ```
/// assert!(bcc_num::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!bcc_num::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }

    #[test]
    fn approx_eq_symmetry() {
        assert_eq!(approx_eq(3.0, 3.1, 0.05), approx_eq(3.1, 3.0, 0.05));
    }
}
