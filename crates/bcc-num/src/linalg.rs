//! Minimal dense linear algebra.
//!
//! A row-major `f64` [`Matrix`] with the handful of operations the workspace
//! needs: products, transposition, LU factorisation with partial pivoting
//! (for solving the small systems in the Blahut–Arimoto cross-checks and in
//! tests that verify the simplex solver against direct vertex enumeration).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// ```
/// use bcc_num::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of a row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves `A·x = b` by LU with partial pivoting. Returns `None` if the
    /// matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for j in col + 1..n {
                v -= a[col * n + j] * x[j];
            }
            x[col] = v / a[col * n + col];
        }
        Some(x)
    }

    /// Determinant via LU (O(n³)).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "det requires a square matrix");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best == 0.0 {
                return 0.0;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                det = -det;
            }
            let diag = a[col * n + col];
            det *= diag;
            for r in col + 1..n {
                let factor = a[r * n + col] / diag;
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
            }
        }
        det
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let x = [2.0, 1.0, 4.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![2.0, 7.0]);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let x = a.solve(&[1.0, -2.0, 0.0]).expect("nonsingular");
        assert!(approx_eq(x[0], 1.0, 1e-10));
        assert!(approx_eq(x[1], -2.0, 1e-10));
        assert!(approx_eq(x[2], -2.0, 1e-10));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: only solvable with row swaps.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a
            .solve(&[5.0, 7.0])
            .expect("permutation matrix is nonsingular");
        assert!(approx_eq(x[0], 7.0, 1e-12));
        assert!(approx_eq(x[1], 5.0, 1e-12));
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
        assert!(approx_eq(a.det(), 0.0, 1e-12));
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!(approx_eq(a.det(), 6.0, 1e-12));
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(approx_eq(b.det(), -1.0, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
