//! Scalar optimisation routines.
//!
//! The phase-duration optimisation in `bcc-core` is a linear program and is
//! handled by `bcc-lp`, but several smaller jobs in the workspace need
//! one-dimensional optimisation:
//!
//! * locating SNR *crossover points* between protocols (root finding on the
//!   sum-rate difference) — [`bisect_root`];
//! * maximising unimodal functions such as the sum rate over a relay
//!   position — [`golden_section_max`];
//! * coarse-to-fine sweeps — [`grid_max`] and [`refine_max`].

/// Result of a scalar maximisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMax {
    /// Argument achieving the (approximate) maximum.
    pub x: f64,
    /// Function value at [`x`](ScalarMax::x).
    pub value: f64,
}

/// Golden-section search for the maximum of a *unimodal* `f` on `[a, b]`.
///
/// Runs until the bracket is shorter than `tol` or 200 iterations have
/// elapsed. For non-unimodal functions the result is a local maximum.
///
/// # Panics
///
/// Panics if `b < a` or `tol <= 0`.
///
/// ```
/// let m = bcc_num::optim::golden_section_max(|x| -(x - 2.0) * (x - 2.0), 0.0, 5.0, 1e-10);
/// assert!((m.x - 2.0).abs() < 1e-8);
/// ```
pub fn golden_section_max<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> ScalarMax {
    assert!(b >= a, "invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..200 {
        if (b - a).abs() < tol {
            break;
        }
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    ScalarMax { x, value: f(x) }
}

/// Bisection root finding for a continuous `f` with a sign change on
/// `[a, b]`.
///
/// Returns `None` if `f(a)` and `f(b)` have the same (nonzero) sign.
///
/// ```
/// let r = bcc_num::optim::bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// ```
pub fn bisect_root<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Option<f64> {
    assert!(b >= a, "invalid bracket [{a}, {b}]");
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Some(a);
    }
    if fb == 0.0 {
        return Some(b);
    }
    if fa.signum() == fb.signum() {
        return None;
    }
    for _ in 0..500 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a) < tol {
            return Some(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Some(0.5 * (a + b))
}

/// Evaluates `f` on `n+1` equally spaced points of `[a, b]` and returns the
/// best. Robust against multi-modality; use [`refine_max`] to polish.
///
/// # Panics
///
/// Panics if `n == 0` or `b < a`.
pub fn grid_max<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> ScalarMax {
    assert!(n > 0, "grid needs at least one interval");
    assert!(b >= a, "invalid interval [{a}, {b}]");
    let mut best = ScalarMax { x: a, value: f(a) };
    for i in 1..=n {
        let x = a + (b - a) * i as f64 / n as f64;
        let v = f(x);
        if v > best.value {
            best = ScalarMax { x, value: v };
        }
    }
    best
}

/// Coarse grid scan followed by golden-section polish in the winning cell.
///
/// Handles multi-modal objectives better than golden-section alone while
/// remaining cheap. `n` is the coarse grid resolution.
pub fn refine_max<F: Fn(f64) -> f64 + Copy>(f: F, a: f64, b: f64, n: usize, tol: f64) -> ScalarMax {
    let coarse = grid_max(f, a, b, n);
    let w = (b - a) / n as f64;
    let lo = (coarse.x - w).max(a);
    let hi = (coarse.x + w).min(b);
    let fine = golden_section_max(f, lo, hi, tol);
    if fine.value >= coarse.value {
        fine
    } else {
        coarse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section_max(|x| 3.0 - (x - 1.25) * (x - 1.25), -10.0, 10.0, 1e-12);
        assert!(approx_eq(m.x, 1.25, 1e-6));
        assert!(approx_eq(m.value, 3.0, 1e-10));
    }

    #[test]
    fn golden_section_boundary_maximum() {
        // Monotone increasing: max at right edge.
        let m = golden_section_max(|x| x, 0.0, 4.0, 1e-10);
        assert!(approx_eq(m.x, 4.0, 1e-6));
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-13).expect("bracketed");
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10));
    }

    #[test]
    fn bisect_rejects_same_sign() {
        assert!(bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-10).is_none());
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-10), Some(0.0));
        assert_eq!(bisect_root(|x| x - 1.0, 0.0, 1.0, 1e-10), Some(1.0));
    }

    #[test]
    fn grid_then_refine_beats_grid() {
        // Two peaks; the higher one is off-grid.
        let f =
            |x: f64| (-((x - 0.31) * 8.0).powi(2)).exp() + 0.5 * (-((x - 2.0) * 8.0).powi(2)).exp();
        let coarse = grid_max(f, 0.0, 3.0, 10);
        let refined = refine_max(f, 0.0, 3.0, 10, 1e-12);
        assert!(refined.value >= coarse.value);
        assert!(approx_eq(refined.x, 0.31, 1e-4));
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn grid_zero_intervals_panics() {
        let _ = grid_max(|x| x, 0.0, 1.0, 0);
    }
}
