//! Hand-rolled data parallelism for embarrassingly parallel batches.
//!
//! The workspace's heavy loops — LP sweeps over scenario grids, Monte-Carlo
//! fading trials — are independent per item, so they scale linearly with
//! cores *if* the scheduling overhead stays negligible against an LP solve
//! (tens of microseconds). This module provides exactly that and nothing
//! more: a chunked, self-scheduling [`par_map_indexed`] over scoped
//! `std::thread` workers. No thread-pool crate, no channels, no unsafe —
//! workers pull chunks of indices from one shared atomic cursor (idle
//! workers automatically "steal" the chunks a slow worker never claims),
//! stash `(index, result)` pairs locally, and the caller reassembles them
//! in input order.
//!
//! # Determinism contract
//!
//! The output of every function here is **bit-identical** for every worker
//! count, including 1: item `i`'s result depends only on item `i` and the
//! per-worker state produced by `init` (which must not make worker-order
//! dependent decisions — in this workspace it builds empty LP workspaces
//! and RNGs seeded per item). Chunking only changes *wall time*, never
//! results, so `BCC_THREADS=1` is a drop-in oracle for any parallel run.
//!
//! # Worker-count policy
//!
//! [`thread_count`] reads the `BCC_THREADS` environment variable (any
//! integer ≥ 1) and falls back to [`std::thread::available_parallelism`].
//! Batch drivers may override it per call (e.g. `Scenario::threads` in
//! `bcc-core`).
//!
//! # Example
//!
//! ```
//! use bcc_num::par;
//!
//! let xs = vec![1.0f64, 4.0, 9.0, 16.0];
//! let roots = par::par_map_indexed(&xs, || (), |(), i, &x| (i, x.sqrt()));
//! assert_eq!(roots, vec![(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Each worker's share of the input is split into roughly this many chunks,
/// so a worker that lands on expensive items (deep fades take more simplex
/// pivots) sheds the rest of the range to its idle peers. Larger values
/// balance better but touch the shared cursor more often; at 8 the cursor
/// traffic is ~`threads * 8` atomic adds per batch — noise against even a
/// single LP solve.
const CHUNKS_PER_WORKER: usize = 8;

/// The worker count used when the caller does not override it: the
/// `BCC_THREADS` environment variable if set to an integer ≥ 1, otherwise
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
///
/// Read on every call — cheap next to any batch this module is used for,
/// and it keeps benches free to flip serial/parallel within one process.
pub fn thread_count() -> usize {
    std::env::var("BCC_THREADS")
        .ok()
        .and_then(|s| parse_thread_override(&s))
        .unwrap_or_else(available_threads)
}

/// Parses a `BCC_THREADS` override: an integer ≥ 1 (surrounding whitespace
/// tolerated). Returns `None` for anything else, which means "fall back to
/// the machine's parallelism" rather than an error — a misspelt override
/// must not change results, only possibly wall time.
pub fn parse_thread_override(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` with [`thread_count`] workers, preserving input
/// order. See [`par_map_indexed_with`].
pub fn par_map_indexed<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_indexed_with(thread_count(), items, init, f)
}

/// Maps `f(state, index, item)` over `items` on `threads` scoped workers
/// and returns the results **in input order**.
///
/// `init` runs once per worker to build that worker's private scratch
/// state (an LP workspace, a decoder buffer, …); items are then pulled in
/// chunks from a shared cursor, so the assignment of items to workers is
/// dynamic but the *result* of each item is not.
///
/// With `threads == 1` (or one item) everything runs inline on the calling
/// thread — no threads are spawned, making the serial path allocation-free
/// beyond the output vector.
///
/// # Panics
///
/// A panic in `f` or `init` on any worker is propagated to the caller
/// after all workers have stopped.
pub fn par_map_indexed_with<T, S, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    match try_par_map_range::<S, R, Never, _, _>(threads, items.len(), &init, |s, i| {
        Ok(f(s, i, &items[i]))
    }) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Maps an infallible `f(state, index)` over `0..n` on `threads` workers,
/// returning results in index order — the range-based sibling of
/// [`par_map_indexed_with`] for drivers whose "items" are just indices
/// (Monte-Carlo trials, flattened `point × trial` grids).
pub fn par_map_range<S, R, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    match try_par_map_range::<S, R, Never, _, _>(threads, n, &init, |s, i| Ok(f(s, i))) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Maps a fallible `f(state, index)` over `0..n` on `threads` workers.
///
/// On success the results come back in index order. On failure the
/// returned error is the **lowest-index** failure — exactly the one the
/// serial loop would have hit first — so error reporting is as
/// deterministic as the success path. (Every index is still evaluated
/// before an error returns; errors are exceptional in this workspace and
/// not worth a cross-thread abort protocol that would make the reported
/// error depend on scheduling.)
///
/// # Panic isolation
///
/// A panic inside `f` is caught per item (`catch_unwind`), the worker
/// rebuilds its state via `init` and keeps draining the range, and after
/// all workers stop the failure at the **lowest index** — panic or `Err`,
/// whichever comes first in index order, exactly as a serial in-order run
/// would have hit it — is what the caller observes: an `Err` is returned,
/// a panic is resumed on the calling thread. A panicking item therefore
/// poisons only itself, never its blockmates' results, and the observed
/// failure is independent of scheduling. (A panic in `init` itself still
/// aborts the batch — there is no per-item state to contain it to.)
pub fn try_par_map_range<S, R, E, I, F>(
    threads: usize,
    n: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<R, E> + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        // In-order evaluation stops at the first failure by construction,
        // so no catching is needed to make the failure deterministic.
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    /// One item's outcome, with panics reified so the lowest-index rule
    /// can arbitrate between an `Err` and a panic deterministically.
    enum Item<R, E> {
        Ok(R),
        Fail(E),
        Panicked(Box<dyn Any + Send>),
    }

    let chunk = (n / (workers * CHUNKS_PER_WORKER)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut got: Vec<(usize, Item<R, E>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                                Ok(Ok(r)) => got.push((i, Item::Ok(r))),
                                Ok(Err(e)) => got.push((i, Item::Fail(e))),
                                Err(payload) => {
                                    // The unwound `f` may have left the
                                    // scratch state half-updated; rebuild
                                    // it so later items see `init` state,
                                    // as the determinism contract assumes.
                                    state = init();
                                    got.push((i, Item::Panicked(payload)));
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<std::thread::Result<_>>>()
    });

    let mut slots: Vec<Option<Item<R, E>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for part in parts {
        match part {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            // Only `init` can panic outside the per-item catch.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("scheduler covers every index exactly once") {
            Item::Ok(r) => out.push(r),
            Item::Fail(e) => return Err(e),
            Item::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(out)
}

/// Renders a caught panic payload as a human-readable message — the
/// `&str`/`String` payloads `panic!` produces, or a fixed placeholder for
/// anything else. Used by serving layers that contain worker panics and
/// must report them deterministically.
pub fn describe_panic(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The `!` stand-in for infallible maps routed through
/// [`try_par_map_range`] (stable `!` is not available to this crate's MSRV).
#[derive(Debug)]
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_for_every_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let got = par_map_indexed_with(threads, &items, || (), |(), _, &x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = vec![];
        assert_eq!(
            par_map_indexed_with(8, &none, || (), |(), i, _| i),
            Vec::<usize>::new()
        );
        assert_eq!(
            par_map_indexed_with(8, &[5.0], || (), |(), i, &x| (i, x)),
            [(0, 5.0)]
        );
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts how many items it processed in its own state;
        // the per-item results must be item-local regardless.
        let items: Vec<u64> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let got = par_map_indexed_with(
            4,
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |seen, _, &x| {
                *seen += 1;
                x + 1
            },
        );
        assert_eq!(got, (1..=100).collect::<Vec<u64>>());
        assert!(inits.load(Ordering::Relaxed) <= 4, "one init per worker");
    }

    #[test]
    fn error_is_lowest_index_like_serial() {
        for threads in [1, 2, 8] {
            let r: Result<Vec<usize>, usize> = try_par_map_range(
                threads,
                50,
                || (),
                |(), i| {
                    if i % 7 == 3 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
            );
            assert_eq!(r.unwrap_err(), 3, "threads = {threads}");
        }
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert_eq!(parse_thread_override("four"), None);
        assert_eq!(parse_thread_override(""), None);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn lowest_index_error_beats_later_panic() {
        // Err at 3, panic at 40: serial order hits the Err first, so the
        // parallel run must report it and contain (drop) the panic.
        let r: Result<Vec<usize>, usize> = try_par_map_range(
            4,
            64,
            || (),
            |(), i| {
                assert!(i != 40, "panic at 40");
                if i == 3 {
                    Err(3)
                } else {
                    Ok(i)
                }
            },
        );
        assert_eq!(r.unwrap_err(), 3);
    }

    #[test]
    fn lowest_index_panic_beats_later_error() {
        let caught = std::panic::catch_unwind(|| {
            try_par_map_range::<(), usize, usize, _, _>(
                4,
                64,
                || (),
                |(), i| {
                    assert!(i != 5, "panic at 5");
                    if i == 30 {
                        Err(30)
                    } else {
                        Ok(i)
                    }
                },
            )
        });
        let payload = caught.expect_err("panic should win");
        assert_eq!(describe_panic(payload.as_ref()), "panic at 5");
    }

    #[test]
    fn state_rebuilt_after_caught_panic() {
        // A worker whose state was corrupted mid-panic must re-init, so
        // items after the panic still see `init` state. The state here is
        // a guard flag the panicking item leaves set.
        let caught = std::panic::catch_unwind(|| {
            try_par_map_range::<bool, usize, Never, _, _>(
                2,
                64,
                || false,
                |poisoned, i| {
                    assert!(!*poisoned, "stale state leaked past a panic");
                    if i == 9 {
                        *poisoned = true;
                        panic!("boom at 9");
                    }
                    Ok(i)
                },
            )
        });
        let payload = caught.expect_err("panic propagates after the batch");
        assert_eq!(describe_panic(payload.as_ref()), "boom at 9");
    }

    #[test]
    fn describe_panic_payload_kinds() {
        assert_eq!(describe_panic(&"static str"), "static str");
        assert_eq!(describe_panic(&String::from("owned")), "owned");
        assert_eq!(describe_panic(&42u32), "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "boom at 17")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map_indexed_with(
            4,
            &items,
            || (),
            |(), _, &x| {
                assert!(x != 17, "boom at {x}");
                x
            },
        );
    }
}
