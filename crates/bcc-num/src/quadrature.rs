//! Numerical integration.
//!
//! Two rules cover everything the workspace needs:
//!
//! * [`adaptive_simpson`] — general-purpose adaptive quadrature on a finite
//!   interval, used for special-function evaluation and distribution
//!   cross-checks.
//! * [`gauss_laguerre`] — fixed-order Gauss–Laguerre rule for integrals of
//!   the form `∫₀^∞ f(x) e^{-x} dx`. Because a Rayleigh-faded power gain is
//!   exponentially distributed, the *ergodic* AWGN rate
//!   `E[log2(1 + ρ·X)], X ~ Exp(1)` is exactly such an integral; the
//!   Monte-Carlo estimator in `bcc-sim` is validated against this rule.

/// Adaptive Simpson quadrature of `f` over `[a, b]`.
///
/// Recursion stops when the local Richardson error estimate is below `tol`
/// or when `max_depth` is exhausted (whichever comes first), so the routine
/// always terminates.
///
/// ```
/// let v = bcc_num::quadrature::adaptive_simpson(|x| x * x, 0.0, 3.0, 1e-12, 40);
/// assert!((v - 9.0).abs() < 1e-10);
/// ```
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    simpson_rec(
        &f,
        a,
        b,
        fa,
        fm,
        fb,
        simpson_rule(a, b, fa, fm, fb),
        tol,
        max_depth,
    )
}

fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + simpson_rec(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Nodes and weights of the `n`-point Gauss–Laguerre rule
/// (`∫₀^∞ f(x) e^{-x} dx ≈ Σ wᵢ f(xᵢ)`).
///
/// Nodes are the roots of the Laguerre polynomial `L_n`, found by Newton
/// iteration from the standard asymptotic initial guesses; weights follow
/// from the derivative formula `wᵢ = xᵢ / ((n+1)² L_{n+1}(xᵢ)²)`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 128` (the Newton initialisation is only tuned
/// for practical orders).
pub fn gauss_laguerre_nodes(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(
        (1..=128).contains(&n),
        "unsupported Gauss-Laguerre order {n}"
    );
    let mut nodes = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let nf = n as f64;
    let mut z = 0.0_f64;
    for i in 0..n {
        // Standard initial guesses (Numerical Recipes).
        z = match i {
            0 => 3.0 / (1.0 + 2.4 * nf),
            1 => z + 15.0 / (1.0 + 2.5 * nf),
            _ => {
                let ai = i as f64 - 1.0;
                z + (1.0 + 2.55 * ai) / (1.9 * ai) * (z - nodes[i - 2])
            }
        };
        // Newton iterations on L_n(z) = 0.
        for _ in 0..100 {
            // Recurrence for Laguerre polynomials: (k+1) L_{k+1} =
            // (2k+1-z) L_k - k L_{k-1}.
            let mut p1 = 1.0_f64;
            let mut p2 = 0.0_f64;
            for k in 0..n {
                let p3 = p2;
                p2 = p1;
                let kf = k as f64;
                p1 = ((2.0 * kf + 1.0 - z) * p2 - kf * p3) / (kf + 1.0);
            }
            // Derivative via L_n' = n (L_n - L_{n-1}) / z.
            let pp = nf * (p1 - p2) / z;
            let dz = p1 / pp;
            z -= dz;
            if dz.abs() < 1e-15 * z.abs().max(1.0) {
                break;
            }
        }
        nodes.push(z);
        // Recompute L_n, L_{n-1} and the derivative at the converged node,
        // then apply w_i = -1 / (L_n'(x_i) · n · L_{n-1}(x_i)).
        let mut p1 = 1.0_f64;
        let mut p2 = 0.0_f64;
        for k in 0..n {
            let p3 = p2;
            p2 = p1;
            let kf = k as f64;
            p1 = ((2.0 * kf + 1.0 - z) * p2 - kf * p3) / (kf + 1.0);
        }
        let pp = nf * (p1 - p2) / z;
        weights.push(-1.0 / (pp * nf * p2));
    }
    (nodes, weights)
}

/// Integrates `∫₀^∞ f(x) e^{-x} dx` with an `n`-point Gauss–Laguerre rule.
///
/// ```
/// // ∫ x e^{-x} dx = 1
/// let v = bcc_num::quadrature::gauss_laguerre(|x| x, 32);
/// assert!((v - 1.0).abs() < 1e-10);
/// ```
pub fn gauss_laguerre<F: Fn(f64) -> f64>(f: F, n: usize) -> f64 {
    let (nodes, weights) = gauss_laguerre_nodes(n);
    nodes.iter().zip(&weights).map(|(&x, &w)| w * f(x)).sum()
}

/// Ergodic AWGN capacity `E[log2(1 + rho·X)]` for `X ~ Exp(1)` (a unit-mean
/// Rayleigh power gain) computed by 64-point Gauss–Laguerre quadrature.
///
/// This is the reference value the Monte-Carlo ergodic-rate estimator is
/// tested against.
pub fn ergodic_rayleigh_capacity(rho: f64) -> f64 {
    assert!(rho >= 0.0, "SNR must be non-negative, got {rho}");
    if rho == 0.0 {
        return 0.0;
    }
    gauss_laguerre(|x| crate::special::log2_1p(rho * x), 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact on cubics even without adaptation.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 2.0, 1e-12, 30);
        // ∫ = [x^4/4 - x^2 + x] from -1 to 2 = (4 - 4 + 2) - (1/4 - 1 - 1) = 3.75
        assert!(approx_eq(v, 3.75, 1e-10));
    }

    #[test]
    fn simpson_transcendental() {
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12, 40);
        assert!(approx_eq(v, 2.0, 1e-10));
    }

    #[test]
    fn simpson_handles_reversed_interval_sign() {
        let forward = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12, 40);
        assert!(approx_eq(forward, std::f64::consts::E - 1.0, 1e-10));
    }

    #[test]
    fn laguerre_moments() {
        // ∫ x^k e^{-x} = k!
        for (k, fact) in [(0u32, 1.0), (1, 1.0), (2, 2.0), (3, 6.0), (5, 120.0)] {
            let v = gauss_laguerre(|x| x.powi(k as i32), 40);
            assert!(approx_eq(v, fact, 1e-8), "k={k}: {v} vs {fact}");
        }
    }

    #[test]
    fn laguerre_weights_sum_to_one() {
        // ∫ e^{-x} dx = 1, so weights sum to 1.
        for n in [4, 16, 64] {
            let (_, w) = gauss_laguerre_nodes(n);
            let s: f64 = w.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-10), "n={n}: {s}");
        }
    }

    #[test]
    fn ergodic_capacity_monotone_in_snr() {
        let c1 = ergodic_rayleigh_capacity(1.0);
        let c2 = ergodic_rayleigh_capacity(10.0);
        let c3 = ergodic_rayleigh_capacity(100.0);
        assert!(c1 < c2 && c2 < c3);
        assert_eq!(ergodic_rayleigh_capacity(0.0), 0.0);
    }

    #[test]
    fn ergodic_capacity_reference_value() {
        // E[ln(1+rho X)] = e^{1/rho} E1(1/rho); at rho = 1 this is
        // e * E1(1) = 0.596347362323194..., so capacity = that / ln 2.
        let expected = 0.5963473623231942 / std::f64::consts::LN_2;
        assert!(approx_eq(ergodic_rayleigh_capacity(1.0), expected, 1e-8));
    }

    #[test]
    fn ergodic_capacity_below_awgn_capacity_jensen() {
        // Jensen: E[log2(1+rho X)] <= log2(1 + rho E[X]) = log2(1+rho).
        for &rho in &[0.5, 2.0, 31.6] {
            assert!(ergodic_rayleigh_capacity(rho) < crate::special::log2_1p(rho));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn laguerre_rejects_zero_order() {
        let _ = gauss_laguerre_nodes(0);
    }
}
