//! The workspace-wide deterministic seeding policy.
//!
//! Every Monte-Carlo driver and random generator in the workspace derives
//! decorrelated child streams through [`mix_seed`], so stream `k` is
//! independent of how much randomness stream `k - 1` consumed — the
//! property that makes flat trial fan-outs bit-identical at any worker
//! count or block size. The function lives here, at the bottom of the
//! dependency stack, so both the channel substrate (topology placement)
//! and the core evaluators (fading trials) share one definition;
//! `bcc_core::scenario::mix_seed` re-exports it unchanged.

/// Mixes `(seed, k)` into a decorrelated child seed (SplitMix64
/// finalisation).
///
/// ```
/// use bcc_num::seed::mix_seed;
///
/// // Adjacent indices land far apart in seed space:
/// assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
/// // ... and the mix is a pure function of (seed, k):
/// assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
/// ```
pub fn mix_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_indices_decorrelate() {
        let seeds: Vec<u64> = (0..64).map(|k| mix_seed(0xBCC, k)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn low_entropy_inputs_spread() {
        // Consecutive small indices must not produce clustered outputs:
        // the high bits have to move too.
        let a = mix_seed(0, 0);
        let b = mix_seed(0, 1);
        assert_ne!(a >> 32, b >> 32);
    }
}
