//! Special functions used across the workspace.
//!
//! * [`erf`] / [`erfc`] — error function and complement (Abramowitz–Stegun
//!   7.1.26-style rational approximation refined with one Newton step against
//!   the exact derivative; absolute error below 1e-12 on the tested range).
//! * [`q_function`] — Gaussian tail probability `Q(x)`, the standard tool for
//!   BPSK/QAM error rates in the symbol-level validation experiments.
//! * [`log2_1p`] — `log2(1+x)` computed via `ln_1p` so the AWGN capacity
//!   `C(x)` stays accurate for the tiny SNRs that show up in deep-fade
//!   Monte-Carlo draws.
//! * [`log_sum_exp`] — numerically stable soft-max accumulator used by the
//!   joint-typicality and LDPC modules.
//! * [`ln_gamma`] / [`gamma_p`] / [`gamma_q`] — log-gamma and the
//!   regularized incomplete gamma functions, the CDF/survival machinery
//!   behind the analytic Nakagami-m outage tails of the deep-outage engine.

/// `log2(1 + x)` with full precision for small `x`.
///
/// # Panics
///
/// Panics if `x < -1` (the argument of the logarithm would be negative).
///
/// ```
/// let tiny = 1e-17;
/// // naive (1.0 + tiny).log2() loses the contribution entirely:
/// assert_eq!((1.0f64 + tiny).log2(), 0.0);
/// assert!(bcc_num::special::log2_1p(tiny) > 0.0);
/// ```
pub fn log2_1p(x: f64) -> f64 {
    assert!(x >= -1.0, "log2_1p requires x >= -1, got {x}");
    x.ln_1p() / std::f64::consts::LN_2
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Evaluated by adaptive Simpson quadrature of the defining integral for
/// moderate arguments (absolute error below 1e-12 on the tested range);
/// for `|x| ≥ 6` the result is ±1 to machine precision.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = x.signum();
    let x = x.abs();
    let y = if x < 6.0 {
        crate::quadrature::adaptive_simpson(|t| (-t * t).exp(), 0.0, x, 1e-14, 60) * 2.0
            / std::f64::consts::PI.sqrt()
    } else {
        1.0
    };
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, computed to
/// preserve precision in the tail (`x` large ⇒ `erfc(x)` tiny).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 1.0 {
        return 1.0 - erf(x);
    }
    // Continued-fraction expansion (Lentz) of erfc for x >= 1: accurate in
    // the far tail where 1 - erf(x) would cancel catastrophically.
    let x2 = x * x;
    let mut cf = 0.0_f64;
    // Evaluate the continued fraction x + 1/2/(x + 1/(x + 3/2/(x + ...))) from
    // the bottom up with a fixed depth; 60 levels is far beyond convergence
    // for x >= 1.
    for k in (1..=60).rev() {
        cf = (k as f64 / 2.0) / (x + cf);
    }
    (-x2).exp() / ((x + cf) * std::f64::consts::PI.sqrt())
}

/// The Gaussian Q-function `Q(x) = P[N(0,1) > x] = erfc(x/√2)/2`.
///
/// ```
/// use bcc_num::special::q_function;
/// assert!((q_function(0.0) - 0.5).abs() < 1e-12);
/// assert!(q_function(5.0) < 3e-7);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse Q-function via bisection on the monotone `q_function`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn q_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "q_inv requires p in (0,1), got {p}");
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Numerically stable `ln(Σ exp(xᵢ))`.
///
/// Returns `-inf` for an empty slice (the sum of zero exponentials).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, 9 terms),
/// accurate to ~1e-13 relative over the positive axis. The gamma-family
/// outage tails (Nakagami-m fade powers are `Gamma(m, 1/m)`) are built on
/// this.
///
/// # Panics
///
/// Panics if `x` is not finite and positive.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "ln_gamma requires finite x > 0, got {x}"
    );
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x)/Γ(a) = P[Gamma(a, 1) ≤ x]`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction for the
/// complement otherwise — the standard split that keeps both regimes
/// convergent and cancellation-free. This is the CDF of every
/// Nakagami-m fade power (`|h|² ~ Gamma(m, 1/m)` ⇒
/// `P[|h|² ≤ y] = gamma_p(m, m·y)`), which is what the analytic deep-outage
/// tails evaluate.
///
/// # Panics
///
/// Panics if `a` is not finite positive or `x` is negative/NaN.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(
        a.is_finite() && a > 0.0,
        "gamma_p requires finite a > 0, got {a}"
    );
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x.is_infinite() {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`,
/// computed directly in the tail (`x ≥ a + 1`) so survival probabilities
/// of nearly-certain events keep full relative precision.
///
/// # Panics
///
/// Same domain as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(
        a.is_finite() && a > 0.0,
        "gamma_q requires finite a > 0, got {a}"
    );
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x.is_infinite() {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// `P(a, x)` by the lower series `x^a e^{-x} Σ x^n / (a)_{n+1} / Γ(a)`,
/// convergent (and monotone) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    let log = a * x.ln() - x - ln_gamma(a);
    (sum * log.exp()).min(1.0)
}

/// `Q(a, x)` by the Lentz continued fraction, accurate for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    let log = a * x.ln() - x - ln_gamma(a);
    (log.exp() * h).clamp(0.0, 1.0)
}

/// Binary entropy function `h₂(p) = -p log2 p - (1-p) log2 (1-p)` with the
/// conventional continuous extension `h₂(0) = h₂(1) = 0`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!(approx_eq(erf(0.5), 0.5204998778130465, 1e-10));
        assert!(approx_eq(erf(1.0), 0.8427007929497149, 1e-10));
        assert!(approx_eq(erf(2.0), 0.9953222650189527, 1e-10));
        assert!(approx_eq(erf(-1.0), -0.8427007929497149, 1e-10));
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.20904969985854e-5, erfc(5) = 1.5374597944280351e-12.
        assert!(approx_eq(erfc(3.0), 2.209049699858544e-5, 1e-8));
        assert!(approx_eq(erfc(5.0), 1.5374597944280351e-12, 1e-6));
    }

    #[test]
    fn erfc_negative_symmetry() {
        assert!(approx_eq(erfc(-1.0), 2.0 - erfc(1.0), 1e-12));
    }

    #[test]
    fn q_function_reference() {
        assert!(approx_eq(q_function(0.0), 0.5, 1e-12));
        assert!(approx_eq(q_function(1.0), 0.15865525393145707, 1e-9));
        assert!(approx_eq(q_function(3.0), 0.0013498980316300933, 1e-8));
    }

    #[test]
    fn q_inv_roundtrip() {
        for &p in &[0.4, 0.1, 1e-3, 1e-6] {
            let x = q_inv(p);
            assert!(approx_eq(q_function(x), p, 1e-6), "p={p}");
        }
    }

    #[test]
    fn log2_1p_matches_naive_for_moderate_x() {
        for &x in &[0.1, 1.0, 9.0, 1e4] {
            assert!(approx_eq(log2_1p(x), (1.0 + x).log2(), 1e-12));
        }
    }

    #[test]
    fn log2_1p_small_argument() {
        let x = 1e-14;
        assert!(approx_eq(log2_1p(x), x / std::f64::consts::LN_2, 1e-3));
    }

    #[test]
    fn log_sum_exp_stability() {
        // Would overflow naively.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!(approx_eq(v, 1000.0 + 2f64.ln(), 1e-12));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn binary_entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!(approx_eq(binary_entropy(0.5), 1.0, 1e-12));
        assert!(approx_eq(binary_entropy(0.11), binary_entropy(0.89), 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn binary_entropy_rejects_bad_probability() {
        let _ = binary_entropy(1.5);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = Γ(2) = 1, Γ(1/2) = √π, Γ(5) = 24, Γ(10) = 362880.
        assert!(approx_eq(ln_gamma(1.0), 0.0, 1e-12));
        assert!(approx_eq(ln_gamma(2.0), 0.0, 1e-12));
        assert!(approx_eq(
            ln_gamma(0.5),
            0.5 * std::f64::consts::PI.ln(),
            1e-12
        ));
        assert!(approx_eq(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(approx_eq(ln_gamma(10.0), 362880.0f64.ln(), 1e-12));
        // Reflection branch: Γ(0.25) = 3.6256099082219083...
        assert!(approx_eq(
            ln_gamma(0.25),
            3.625_609_908_221_908_f64.ln(),
            1e-11
        ));
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // a = 1: P(1, x) = 1 − e^{−x} exactly, in both evaluation regimes.
        for &x in &[1e-8_f64, 0.3, 1.0, 1.9, 2.5, 10.0, 50.0] {
            let exact = -(-x).exp_m1();
            assert!(
                approx_eq(gamma_p(1.0, x), exact, 1e-12),
                "P(1,{x}) = {} vs {exact}",
                gamma_p(1.0, x)
            );
        }
    }

    #[test]
    fn gamma_p_erlang_closed_form() {
        // Integer a = 3: P(3, x) = 1 − e^{−x}(1 + x + x²/2).
        for &x in &[0.5_f64, 2.0, 3.5, 8.0, 20.0] {
            let exact = 1.0 - (-x).exp() * (1.0 + x + 0.5 * x * x);
            assert!(
                approx_eq(gamma_p(3.0, x), exact, 1e-11),
                "P(3,{x}) = {} vs {exact}",
                gamma_p(3.0, x)
            );
        }
    }

    #[test]
    fn gamma_p_q_complementary_and_monotone() {
        for &a in &[0.5, 1.0, 2.5, 7.0] {
            let mut last = -1.0;
            for &x in &[0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 12.0, f64::INFINITY] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!(approx_eq(p + q, 1.0, 1e-10), "a={a} x={x}: {p} + {q}");
                assert!(p >= last, "P must be monotone in x");
                last = p;
            }
        }
    }

    #[test]
    fn gamma_p_deep_tail_keeps_relative_precision() {
        // Half-Gaussian power (a = 1/2) deep in the lower tail:
        // P(1/2, x) = erf(√x), tiny but far above f64 underflow.
        let x = 1e-12_f64;
        let exact = erf(x.sqrt());
        let got = gamma_p(0.5, x);
        assert!(
            (got / exact - 1.0).abs() < 1e-9,
            "P(0.5, 1e-12) = {got} vs erf = {exact}"
        );
        // Upper tail: Q(1/2, x) = erfc(√x) stays accurate where 1 − P would
        // cancel to zero.
        let q = gamma_q(0.5, 40.0);
        let exact_q = erfc(40.0f64.sqrt());
        assert!((q / exact_q - 1.0).abs() < 1e-6, "{q} vs {exact_q}");
    }
}
