//! Special functions used across the workspace.
//!
//! * [`erf`] / [`erfc`] — error function and complement (Abramowitz–Stegun
//!   7.1.26-style rational approximation refined with one Newton step against
//!   the exact derivative; absolute error below 1e-12 on the tested range).
//! * [`q_function`] — Gaussian tail probability `Q(x)`, the standard tool for
//!   BPSK/QAM error rates in the symbol-level validation experiments.
//! * [`log2_1p`] — `log2(1+x)` computed via `ln_1p` so the AWGN capacity
//!   `C(x)` stays accurate for the tiny SNRs that show up in deep-fade
//!   Monte-Carlo draws.
//! * [`log_sum_exp`] — numerically stable soft-max accumulator used by the
//!   joint-typicality and LDPC modules.

/// `log2(1 + x)` with full precision for small `x`.
///
/// # Panics
///
/// Panics if `x < -1` (the argument of the logarithm would be negative).
///
/// ```
/// let tiny = 1e-17;
/// // naive (1.0 + tiny).log2() loses the contribution entirely:
/// assert_eq!((1.0f64 + tiny).log2(), 0.0);
/// assert!(bcc_num::special::log2_1p(tiny) > 0.0);
/// ```
pub fn log2_1p(x: f64) -> f64 {
    assert!(x >= -1.0, "log2_1p requires x >= -1, got {x}");
    x.ln_1p() / std::f64::consts::LN_2
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Evaluated by adaptive Simpson quadrature of the defining integral for
/// moderate arguments (absolute error below 1e-12 on the tested range);
/// for `|x| ≥ 6` the result is ±1 to machine precision.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = x.signum();
    let x = x.abs();
    let y = if x < 6.0 {
        crate::quadrature::adaptive_simpson(|t| (-t * t).exp(), 0.0, x, 1e-14, 60) * 2.0
            / std::f64::consts::PI.sqrt()
    } else {
        1.0
    };
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, computed to
/// preserve precision in the tail (`x` large ⇒ `erfc(x)` tiny).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 1.0 {
        return 1.0 - erf(x);
    }
    // Continued-fraction expansion (Lentz) of erfc for x >= 1: accurate in
    // the far tail where 1 - erf(x) would cancel catastrophically.
    let x2 = x * x;
    let mut cf = 0.0_f64;
    // Evaluate the continued fraction x + 1/2/(x + 1/(x + 3/2/(x + ...))) from
    // the bottom up with a fixed depth; 60 levels is far beyond convergence
    // for x >= 1.
    for k in (1..=60).rev() {
        cf = (k as f64 / 2.0) / (x + cf);
    }
    (-x2).exp() / ((x + cf) * std::f64::consts::PI.sqrt())
}

/// The Gaussian Q-function `Q(x) = P[N(0,1) > x] = erfc(x/√2)/2`.
///
/// ```
/// use bcc_num::special::q_function;
/// assert!((q_function(0.0) - 0.5).abs() < 1e-12);
/// assert!(q_function(5.0) < 3e-7);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse Q-function via bisection on the monotone `q_function`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn q_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "q_inv requires p in (0,1), got {p}");
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Numerically stable `ln(Σ exp(xᵢ))`.
///
/// Returns `-inf` for an empty slice (the sum of zero exponentials).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Binary entropy function `h₂(p) = -p log2 p - (1-p) log2 (1-p)` with the
/// conventional continuous extension `h₂(0) = h₂(1) = 0`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!(approx_eq(erf(0.5), 0.5204998778130465, 1e-10));
        assert!(approx_eq(erf(1.0), 0.8427007929497149, 1e-10));
        assert!(approx_eq(erf(2.0), 0.9953222650189527, 1e-10));
        assert!(approx_eq(erf(-1.0), -0.8427007929497149, 1e-10));
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.20904969985854e-5, erfc(5) = 1.5374597944280351e-12.
        assert!(approx_eq(erfc(3.0), 2.209049699858544e-5, 1e-8));
        assert!(approx_eq(erfc(5.0), 1.5374597944280351e-12, 1e-6));
    }

    #[test]
    fn erfc_negative_symmetry() {
        assert!(approx_eq(erfc(-1.0), 2.0 - erfc(1.0), 1e-12));
    }

    #[test]
    fn q_function_reference() {
        assert!(approx_eq(q_function(0.0), 0.5, 1e-12));
        assert!(approx_eq(q_function(1.0), 0.15865525393145707, 1e-9));
        assert!(approx_eq(q_function(3.0), 0.0013498980316300933, 1e-8));
    }

    #[test]
    fn q_inv_roundtrip() {
        for &p in &[0.4, 0.1, 1e-3, 1e-6] {
            let x = q_inv(p);
            assert!(approx_eq(q_function(x), p, 1e-6), "p={p}");
        }
    }

    #[test]
    fn log2_1p_matches_naive_for_moderate_x() {
        for &x in &[0.1, 1.0, 9.0, 1e4] {
            assert!(approx_eq(log2_1p(x), (1.0 + x).log2(), 1e-12));
        }
    }

    #[test]
    fn log2_1p_small_argument() {
        let x = 1e-14;
        assert!(approx_eq(log2_1p(x), x / std::f64::consts::LN_2, 1e-3));
    }

    #[test]
    fn log_sum_exp_stability() {
        // Would overflow naively.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!(approx_eq(v, 1000.0 + 2f64.ln(), 1e-12));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn binary_entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!(approx_eq(binary_entropy(0.5), 1.0, 1e-12));
        assert!(approx_eq(binary_entropy(0.11), binary_entropy(0.89), 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn binary_entropy_rejects_bad_probability() {
        let _ = binary_entropy(1.5);
    }
}
