//! Streaming statistics for Monte-Carlo experiments.
//!
//! Everything here is deterministic given its inputs; randomness lives in
//! the simulators (`bcc-sim`). [`RunningStats`] uses Welford's algorithm so
//! million-sample runs do not lose precision to catastrophic cancellation.

use std::fmt;

/// Streaming mean/variance accumulator (Welford).
///
/// ```
/// use bcc_num::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.len(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` if no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean. Returns `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (divides by `n-1`). `NaN` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by `n`). `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided normal-approximation confidence interval for the mean at
    /// confidence level `level` (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let z = crate::special::q_inv((1.0 - level) / 2.0);
        let half = z * self.std_error();
        ConfidenceInterval {
            lo: self.mean() - half,
            hi: self.mean() + half,
            level,
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A two-sided confidence interval produced by
/// [`RunningStats::confidence_interval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Confidence level in `(0,1)`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// `true` if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] @ {:.0}%",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// Empirical cumulative distribution function over a stored sample.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples; NaNs are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = P[X <= x]` under the empirical measure.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Empirical `p`-quantile (inverse CDF, lower interpolation).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&p), "quantile level out of range: {p}");
        if p == 1.0 {
            return *self.sorted.last().expect("non-empty");
        }
        let idx = (p * self.sorted.len() as f64).floor() as usize;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }
}

/// Streaming accumulator for an **importance-sampled tail probability**:
/// trials arrive as `(likelihood-ratio weight, event indicator)` pairs and
/// the estimator is the unnormalized mean `p̂ = (1/n) Σ wᵢ·1{eventᵢ}`,
/// which is unbiased whenever `E_q[w] = 1` (true by construction for the
/// defensive-mixture tilts in `bcc-channel`). Alongside the estimate it
/// tracks the diagnostics an IS run must report before its number can be
/// trusted:
///
/// * [`relative_error`](WeightedTailStats::relative_error) — the estimated
///   relative standard error `se(p̂)/p̂` from the sample variance of `w·1`;
/// * [`ess`](WeightedTailStats::ess) — Kish effective sample size
///   `(Σw)²/Σw²`, how many *plain* MC trials the weighted sample is worth;
/// * [`hits`](WeightedTailStats::hits) — raw event count; zero hits means
///   the run never reached the tail and the estimate is unresolved
///   ([`probability`](WeightedTailStats::probability) returns `None`).
///
/// Pushes must happen in a deterministic order (trial order) for
/// bit-identical replay — Welford accumulation is order-dependent.
///
/// ```
/// use bcc_num::stats::WeightedTailStats;
///
/// let mut s = WeightedTailStats::new();
/// for (w, below) in [(0.5, true), (1.0, false), (1.5, true), (1.0, false)] {
///     s.push(w, below);
/// }
/// assert_eq!(s.probability(), Some(0.5)); // (0.5 + 1.5) / 4
/// assert_eq!(s.hits(), 2);
/// assert!(s.ess() > 3.0 && s.ess() <= 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedTailStats {
    stats: RunningStats,
    sum_w: f64,
    sum_w2: f64,
    hits: u64,
}

impl WeightedTailStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedTailStats::default()
    }

    /// Adds one trial: its likelihood-ratio weight and whether the tail
    /// event (sum rate below target) occurred.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative or not finite.
    pub fn push(&mut self, weight: f64, below: bool) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "IS weight must be finite and non-negative, got {weight}"
        );
        self.stats.push(if below { weight } else { 0.0 });
        self.sum_w += weight;
        self.sum_w2 += weight * weight;
        self.hits += u64::from(below);
    }

    /// Number of trials pushed.
    pub fn len(&self) -> u64 {
        self.stats.len()
    }

    /// `true` if no trials have been pushed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Raw count of trials whose event occurred.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The unnormalized IS estimate `p̂ = (1/n) Σ wᵢ·1{eventᵢ}`, or `None`
    /// when no trial hit the tail — the weighted analogue of an empirical
    /// count of zero, where the run's resolution floor has been crossed
    /// and any number would be extrapolation.
    pub fn probability(&self) -> Option<f64> {
        if self.hits == 0 {
            None
        } else {
            Some(self.stats.mean())
        }
    }

    /// Estimated relative standard error `se(p̂)/p̂`, or `None` when the
    /// estimate itself is unresolved (or a single trial leaves the
    /// variance undefined).
    pub fn relative_error(&self) -> Option<f64> {
        let p = self.probability()?;
        if self.stats.len() < 2 {
            return None;
        }
        Some(self.stats.std_error() / p)
    }

    /// Kish effective sample size `(Σw)²/Σw²` — degrades from `n` (all
    /// weights equal) toward 1 as the weights disperse. `0` when empty.
    pub fn ess(&self) -> f64 {
        if self.sum_w2 == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w2
        }
    }

    /// Mean likelihood-ratio weight — `E_q[w] = 1` in expectation for any
    /// properly normalised sampler, which the unbiasedness proptests pin.
    pub fn mean_weight(&self) -> f64 {
        if self.stats.is_empty() {
            f64::NAN
        } else {
            self.sum_w / self.stats.len() as f64
        }
    }

    /// Variance of the per-trial estimator `w·1{event}` (the quantity
    /// whose `1/n` decay sets the relative error); NaN below two trials.
    pub fn estimator_variance(&self) -> f64 {
        self.stats.sample_variance()
    }
}

/// Fixed-bin histogram over a closed range.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Adds an observation; out-of-range values are tallied separately.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Normalised density estimate per bin (integrates to the in-range
    /// fraction of the sample).
    pub fn density(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let n = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / (n * w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(approx_eq(s.mean(), mean, 1e-12));
        assert!(approx_eq(s.sample_variance(), var, 1e-12));
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.sample_variance().is_nan());
        assert!(s.is_empty());
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (left, right) = xs.split_at(123);
        let mut a: RunningStats = left.iter().copied().collect();
        let b: RunningStats = right.iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(a.len(), all.len());
        assert!(approx_eq(a.mean(), all.mean(), 1e-12));
        assert!(approx_eq(a.sample_variance(), all.sample_variance(), 1e-12));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s.clone();
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn confidence_interval_contains_mean() {
        let s: RunningStats = (0..100).map(|i| i as f64).collect();
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.half_width() > 0.0);
        // 99% interval is wider than 90%.
        assert!(
            s.confidence_interval(0.99).half_width() > s.confidence_interval(0.90).half_width()
        );
    }

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn weighted_tail_plain_mc_reduces_to_counting() {
        // Unit weights: the IS estimator is exactly the empirical fraction
        // and the ESS is the full sample size.
        let mut s = WeightedTailStats::new();
        for i in 0..100 {
            s.push(1.0, i % 4 == 0);
        }
        assert!(approx_eq(s.probability().unwrap(), 0.25, 1e-12));
        assert_eq!(s.hits(), 25);
        assert!(approx_eq(s.ess(), 100.0, 1e-12));
        assert!(approx_eq(s.mean_weight(), 1.0, 1e-12));
        let rel = s.relative_error().unwrap();
        // Binomial: se/p = sqrt((1-p)/(p n)) ≈ 0.1737 (sample variant).
        assert!((rel - 0.174).abs() < 0.01, "rel err {rel}");
    }

    #[test]
    fn weighted_tail_zero_hits_is_unresolved() {
        let mut s = WeightedTailStats::new();
        for _ in 0..50 {
            s.push(1.0, false);
        }
        assert_eq!(s.probability(), None);
        assert_eq!(s.relative_error(), None);
        assert_eq!(s.hits(), 0);
    }

    #[test]
    fn weighted_tail_ess_penalises_weight_spread() {
        let mut s = WeightedTailStats::new();
        s.push(1e-3, true);
        s.push(1.0, true);
        // (Σw)²/Σw² ≈ 1 when one weight dominates.
        assert!(s.ess() < 1.01, "ess {}", s.ess());
    }

    #[test]
    #[should_panic(expected = "IS weight")]
    fn weighted_tail_rejects_bad_weight() {
        WeightedTailStats::new().push(f64::NAN, true);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(11.0);
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 12);
    }

    #[test]
    fn histogram_density_normalisation() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..1000 {
            h.push((i as f64 + 0.5) / 1000.0);
        }
        let total_mass: f64 = h.density().iter().map(|d| d * 0.25).sum();
        assert!(approx_eq(total_mass, 1.0, 1e-12));
    }
}
