//! Property-based tests for the parallel map engine: for *any* input and
//! *any* worker count, `par_map_indexed` must behave exactly like the
//! serial `map` — order preserved, every item visited once, empty and
//! singleton inputs included.

use bcc_num::par;
use proptest::prelude::*;

proptest! {
    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(-1e9f64..1e9, 0..80),
        threads in 1usize..12,
    ) {
        let expect: Vec<f64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.mul_add(2.0, i as f64))
            .collect();
        let got = par::par_map_indexed_with(threads, &items, || (), |(), i, &x| {
            x.mul_add(2.0, i as f64)
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn range_and_slice_engines_agree(n in 0usize..200, threads in 1usize..12) {
        let items: Vec<usize> = (0..n).collect();
        let via_slice = par::par_map_indexed_with(threads, &items, || (), |(), _, &x| x * x);
        let via_range = par::par_map_range(threads, n, || (), |(), i| i * i);
        prop_assert_eq!(via_slice, via_range);
    }

    #[test]
    fn worker_state_does_not_leak_into_results(
        n in 0usize..120,
        threads in 1usize..9,
    ) {
        // A stateful counter per worker must not perturb per-item output.
        let got = par::par_map_range(threads, n, || 0u64, |calls, i| {
            *calls += 1;
            i as u64
        });
        prop_assert_eq!(got, (0..n as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn try_map_reports_the_serial_error(
        n in 1usize..100,
        bad in 0usize..100,
        threads in 1usize..9,
    ) {
        // Serial semantics: the error with the lowest index wins.
        let res: Result<Vec<usize>, usize> =
            par::try_par_map_range(threads, n, || (), |(), i| {
                if i >= bad { Err(i) } else { Ok(i) }
            });
        if bad < n {
            prop_assert_eq!(res.unwrap_err(), bad);
        } else {
            prop_assert_eq!(res.unwrap(), (0..n).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn try_map_lowest_index_wins_for_scattered_failures(
        n in 1usize..120,
        fail_raw in prop::collection::vec(0usize..120, 0..12),
        threads in 1usize..9,
    ) {
        // Failures injected at arbitrary (non-contiguous) indices: the
        // reported error must still be the one the serial loop would hit
        // first — the minimum failing index — at every worker count.
        let fail: std::collections::BTreeSet<usize> = fail_raw.into_iter().collect();
        let res: Result<Vec<usize>, usize> =
            par::try_par_map_range(threads, n, || (), |(), i| {
                if fail.contains(&i) { Err(i) } else { Ok(i * 2) }
            });
        match fail.iter().copied().find(|&i| i < n) {
            Some(first) => prop_assert_eq!(res.unwrap_err(), first),
            None => prop_assert_eq!(res.unwrap(), (0..n).map(|i| i * 2).collect::<Vec<usize>>()),
        }
    }
    #[test]
    fn panicking_item_yields_identical_failure_selection(
        n in 1usize..100,
        panic_at in 0usize..100,
        err_raw in prop::collection::vec(0usize..100, 0..6),
    ) {
        // One panicking item at an arbitrary index plus scattered Errs:
        // the observed failure must be the lowest-index one — panic or
        // error, exactly as a serial in-order run would hit it — at every
        // worker count, and a panic must never abort the process.
        silence_panic_reports();
        let errs: std::collections::BTreeSet<usize> = err_raw.into_iter().collect();
        let first_fail = (0..n).find(|i| *i == panic_at || errs.contains(i));
        for threads in [1usize, 2, 8] {
            let run = std::panic::catch_unwind(|| {
                par::try_par_map_range::<(), usize, usize, _, _>(threads, n, || (), |(), i| {
                    assert!(i != panic_at, "injected panic at {i}");
                    if errs.contains(&i) { Err(i) } else { Ok(i * 3) }
                })
            });
            match (first_fail, run) {
                (Some(f), Err(payload)) => {
                    prop_assert_eq!(f, panic_at, "panicked but lowest failure is an Err");
                    prop_assert_eq!(
                        par::describe_panic(payload.as_ref()),
                        format!("injected panic at {f}")
                    );
                }
                (Some(f), Ok(res)) => {
                    prop_assert_ne!(f, panic_at, "lowest failure is the panic, not an Err");
                    prop_assert_eq!(res.unwrap_err(), f);
                }
                (None, Ok(res)) => {
                    prop_assert_eq!(res.unwrap(), (0..n).map(|i| i * 3).collect::<Vec<usize>>());
                }
                (None, Err(_)) => prop_assert!(false, "panicked with no failing index"),
            }
        }
    }
}

/// The injected panics above are expected; keep their default-hook
/// backtrace chatter out of the test output. (libtest re-reports real
/// test failures from the payload itself, so nothing is lost.)
fn silence_panic_reports() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

#[test]
fn empty_input_all_worker_counts() {
    let empty: Vec<f64> = Vec::new();
    for threads in 1..10 {
        assert!(par::par_map_indexed_with(threads, &empty, || (), |(), _, &x| x).is_empty());
    }
}

#[test]
fn singleton_input_all_worker_counts() {
    for threads in 1..10 {
        let got = par::par_map_indexed_with(threads, &[7.5f64], || (), |(), i, &x| (i, x * 2.0));
        assert_eq!(got, vec![(0, 15.0)]);
    }
}
