//! Property-based tests for the numerical substrate.

use bcc_num::{approx_eq, complex::Complex64, db::Db, special, stats::RunningStats, Matrix};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_filter("in range", move |x| range.contains(x))
}

proptest! {
    #[test]
    fn complex_mul_commutative(
        a in -1e6f64..1e6, b in -1e6f64..1e6,
        c in -1e6f64..1e6, d in -1e6f64..1e6,
    ) {
        let z = Complex64::new(a, b);
        let w = Complex64::new(c, d);
        let zw = z * w;
        let wz = w * z;
        prop_assert!(approx_eq(zw.re, wz.re, 1e-9));
        prop_assert!(approx_eq(zw.im, wz.im, 1e-9));
    }

    #[test]
    fn complex_norm_multiplicative(
        a in -1e3f64..1e3, b in -1e3f64..1e3,
        c in -1e3f64..1e3, d in -1e3f64..1e3,
    ) {
        let z = Complex64::new(a, b);
        let w = Complex64::new(c, d);
        prop_assert!(approx_eq((z * w).norm(), z.norm() * w.norm(), 1e-9));
    }

    #[test]
    fn complex_conj_distributes_over_mul(
        a in -1e3f64..1e3, b in -1e3f64..1e3,
        c in -1e3f64..1e3, d in -1e3f64..1e3,
    ) {
        let z = Complex64::new(a, b);
        let w = Complex64::new(c, d);
        let lhs = (z * w).conj();
        let rhs = z.conj() * w.conj();
        prop_assert!(approx_eq(lhs.re, rhs.re, 1e-9));
        prop_assert!(approx_eq(lhs.im, rhs.im, 1e-9));
    }

    #[test]
    fn db_roundtrip(x in 1e-9f64..1e9) {
        let db = Db::from_linear(x);
        prop_assert!(approx_eq(db.to_linear(), x, 1e-9));
    }

    #[test]
    fn db_add_is_linear_mul(a in -60f64..60.0, b in -60f64..60.0) {
        let da = Db::new(a);
        let db_ = Db::new(b);
        prop_assert!(approx_eq(
            (da + db_).to_linear(),
            da.to_linear() * db_.to_linear(),
            1e-9
        ));
    }

    #[test]
    fn q_function_monotone_decreasing(x in -6f64..6.0, dx in 0.01f64..3.0) {
        prop_assert!(special::q_function(x) > special::q_function(x + dx));
    }

    #[test]
    fn q_symmetry(x in 0f64..6.0) {
        prop_assert!(approx_eq(
            special::q_function(-x),
            1.0 - special::q_function(x),
            1e-9
        ));
    }

    #[test]
    fn log2_1p_concave_increasing(x in 0f64..1e6, y in 0f64..1e6) {
        // Increasing:
        if x < y {
            prop_assert!(special::log2_1p(x) <= special::log2_1p(y));
        }
        // Subadditive on non-negatives (consequence of concavity + f(0)=0):
        prop_assert!(
            special::log2_1p(x + y) <= special::log2_1p(x) + special::log2_1p(y) + 1e-12
        );
    }

    #[test]
    fn binary_entropy_symmetric(p in 0f64..=1.0) {
        prop_assert!(approx_eq(
            special::binary_entropy(p),
            special::binary_entropy(1.0 - p),
            1e-9
        ));
        prop_assert!(special::binary_entropy(p) <= 1.0 + 1e-12);
    }

    #[test]
    fn welford_merge_matches_sequential(
        xs in prop::collection::vec(finite_f64(-1e6..1e6), 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let (l, r) = xs.split_at(split);
        let mut a: RunningStats = l.iter().copied().collect();
        let b: RunningStats = r.iter().copied().collect();
        a.merge(&b);
        let whole: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(a.len(), whole.len());
        prop_assert!(approx_eq(a.mean(), whole.mean(), 1e-6));
    }

    #[test]
    fn matrix_solve_residual(
        entries in prop::collection::vec(-10f64..10.0, 9),
        rhs in prop::collection::vec(-10f64..10.0, 3),
    ) {
        let m = Matrix::from_rows(&[&entries[0..3], &entries[3..6], &entries[6..9]]);
        if let Some(x) = m.solve(&rhs) {
            let back = m.mul_vec(&x);
            for (bi, ri) in back.iter().zip(&rhs) {
                // Residual scaled by matrix magnitude.
                prop_assert!(approx_eq(*bi, *ri, 1e-5), "residual too large: {} vs {}", bi, ri);
            }
        }
    }

    #[test]
    fn matrix_transpose_preserves_det(entries in prop::collection::vec(-5f64..5.0, 9)) {
        let m = Matrix::from_rows(&[&entries[0..3], &entries[3..6], &entries[6..9]]);
        prop_assert!(approx_eq(m.det(), m.transpose().det(), 1e-6));
    }
}
