//! ASCII line/scatter charts.
//!
//! Renders multiple [`Series`] onto a character canvas with axes, tick
//! labels and a legend. Each series gets a distinct glyph; overlapping
//! points show the later series' glyph.

use crate::series::Series;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// A chart builder.
///
/// ```
/// use bcc_plot::{Chart, Series};
///
/// let s = Series::from_points("line", (0..10).map(|i| (i as f64, i as f64)).collect());
/// let out = Chart::new(40, 10).title("demo").add(s).render();
/// assert!(out.contains("demo"));
/// assert!(out.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    width: usize,
    height: usize,
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl Chart {
    /// Creates a chart with an interior canvas of `width × height`
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if `width < 10` or `height < 4` (too small to render).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 10 && height >= 4,
            "canvas too small: {width}x{height}"
        );
        Chart {
            width,
            height,
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Sets the title line.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = t.into();
        self
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, l: impl Into<String>) -> Self {
        self.x_label = l.into();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, l: impl Into<String>) -> Self {
        self.y_label = l.into();
        self
    }

    /// Adds a series.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders to a multi-line string.
    ///
    /// Empty charts (no finite points) render a placeholder note.
    pub fn render(&self) -> String {
        // Global bounds across series.
        let mut bounds: Option<(f64, f64, f64, f64)> = None;
        for s in &self.series {
            if let Some((x0, x1, y0, y1)) = s.bounds() {
                bounds = Some(match bounds {
                    None => (x0, x1, y0, y1),
                    Some((a, b, c, d)) => (a.min(x0), b.max(x1), c.min(y0), d.max(y1)),
                });
            }
        }
        let Some((x0, x1, y0, y1)) = bounds else {
            return format!("{} <no data>\n", self.title);
        };
        // Avoid zero spans.
        let (x0, x1) = if x0 == x1 {
            (x0 - 0.5, x1 + 0.5)
        } else {
            (x0, x1)
        };
        let (y0, y1) = if y0 == y1 {
            (y0 - 0.5, y1 + 0.5)
        } else {
            (y0, y1)
        };

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                canvas[row][cx.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("  {}\n", self.title));
        }
        if !self.y_label.is_empty() {
            out.push_str(&format!("  {}\n", self.y_label));
        }
        let y_ticks = [y1, 0.5 * (y0 + y1), y0];
        for (r, row) in canvas.iter().enumerate() {
            let tick = if r == 0 {
                format!("{:>9.3} ", y_ticks[0])
            } else if r == self.height / 2 {
                format!("{:>9.3} ", y_ticks[1])
            } else if r == self.height - 1 {
                format!("{:>9.3} ", y_ticks[2])
            } else {
                " ".repeat(10)
            };
            out.push_str(&tick);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(10));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:>10} {:<width$.3}{:>8.3}\n",
            "",
            x0,
            x1,
            width = self.width - 7
        ));
        if !self.x_label.is_empty() {
            out.push_str(&format!(
                "{:>width$}\n",
                self.x_label,
                width = 11 + self.width / 2
            ));
        }
        // Legend.
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, slope: f64) -> Series {
        Series::from_points(
            name,
            (0..20).map(|i| (i as f64, slope * i as f64)).collect(),
        )
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let out = Chart::new(40, 10)
            .title("Sum rates")
            .x_label("P [dB]")
            .y_label("bits/use")
            .add(line("MABC", 1.0))
            .add(line("TDBC", 2.0))
            .render();
        assert!(out.contains("Sum rates"));
        assert!(out.contains("P [dB]"));
        assert!(out.contains("bits/use"));
        assert!(out.contains("* MABC"));
        assert!(out.contains("o TDBC"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let out = Chart::new(40, 10).title("empty").render();
        assert!(out.contains("<no data>"));
    }

    #[test]
    fn increasing_series_touches_corners() {
        let out = Chart::new(40, 10).add(line("up", 1.0)).render();
        let rows: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 10);
        // First canvas row (top) holds the max point at the right edge;
        // last canvas row holds the min at the left edge.
        assert!(rows[0].trim_end().ends_with('*'));
        let bottom = rows[9];
        let after_axis = &bottom[bottom.find('|').unwrap() + 1..];
        assert_eq!(after_axis.chars().next(), Some('*'));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = Series::from_points("flat", vec![(0.0, 1.0), (1.0, 1.0)]);
        let out = Chart::new(40, 10).add(s).render();
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = Chart::new(5, 2);
    }
}
