//! Minimal CSV writing (RFC-4180-style quoting, no dependencies).

use crate::series::Series;
use std::io::{self, Write};

/// Quotes a field if it contains a comma, quote or newline.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes rows of string fields as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_rows<W: Write>(mut w: W, rows: &[Vec<String>]) -> io::Result<()> {
    for row in rows {
        let line: Vec<String> = row.iter().map(|f| quote(f)).collect();
        writeln!(w, "{}", line.join(","))?;
    }
    Ok(())
}

/// Writes a group of series sharing an x-grid as one CSV table with header
/// `x, <name1>, <name2>, …`. Series are sampled by index; rows are emitted
/// up to the longest series, with empty cells where a series is shorter.
/// The x value is taken from the first series that has that index.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `series` is empty.
pub fn write_series<W: Write>(w: W, x_name: &str, series: &[Series]) -> io::Result<()> {
    assert!(!series.is_empty(), "need at least one series");
    let n = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(n + 1);
    let mut header = vec![x_name.to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    rows.push(header);
    for i in 0..n {
        let x = series.iter().find_map(|s| s.points.get(i).map(|p| p.0));
        let mut row = vec![x.map_or(String::new(), |v| format!("{v}"))];
        for s in series {
            row.push(
                s.points
                    .get(i)
                    .map_or(String::new(), |p| format!("{}", p.1)),
            );
        }
        rows.push(row);
    }
    write_rows(w, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut buf = Vec::new();
        write_rows(
            &mut buf,
            &[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        let mut buf = Vec::new();
        write_rows(&mut buf, &[vec!["a,b".into(), "say \"hi\"".into()]]).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "\"a,b\",\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    fn series_table() {
        let s1 = Series::from_points("u", vec![(0.0, 1.0), (1.0, 2.0)]);
        let s2 = Series::from_points("v", vec![(0.0, 3.0)]);
        let mut buf = Vec::new();
        write_series(&mut buf, "x", &[s1, s2]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,u,v");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1,2,");
    }
}
