//! Categorical ASCII heatmaps.
//!
//! Renders a 2-D grid of category labels (e.g. "which protocol wins at
//! (relay position, power)") as a character map with axis ticks and a
//! legend — the workspace's stand-in for a colour-coded phase diagram.

use std::collections::BTreeMap;

/// A categorical 2-D map builder.
///
/// ```
/// use bcc_plot::heatmap::CategoryMap;
///
/// let mut m = CategoryMap::new(3, 2, 0.0, 1.0, 0.0, 10.0);
/// m.set(0, 0, "A");
/// m.set(2, 1, "B");
/// let s = m.render();
/// assert!(s.contains('A') || s.contains('a'));
/// ```
#[derive(Debug, Clone)]
pub struct CategoryMap {
    cols: usize,
    rows: usize,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    cells: Vec<Option<String>>,
}

impl CategoryMap {
    /// Creates an empty `cols × rows` map covering `[x0, x1] × [y0, y1]`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a range is empty.
    pub fn new(cols: usize, rows: usize, x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        assert!(cols > 0 && rows > 0, "map dimensions must be positive");
        assert!(x1 > x0 && y1 > y0, "axis ranges must be non-empty");
        CategoryMap {
            cols,
            rows,
            x0,
            x1,
            y0,
            y1,
            cells: vec![None; cols * rows],
        }
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The x-coordinate of the centre of column `c`.
    pub fn x_of(&self, c: usize) -> f64 {
        self.x0 + (self.x1 - self.x0) * (c as f64 + 0.5) / self.cols as f64
    }

    /// The y-coordinate of the centre of row `r` (row 0 is the bottom).
    pub fn y_of(&self, r: usize) -> f64 {
        self.y0 + (self.y1 - self.y0) * (r as f64 + 0.5) / self.rows as f64
    }

    /// Sets the category of cell `(col, row)` (row 0 at the bottom).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, col: usize, row: usize, category: impl Into<String>) {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        self.cells[row * self.cols + col] = Some(category.into());
    }

    /// The category of cell `(col, row)`, if set.
    pub fn get(&self, col: usize, row: usize) -> Option<&str> {
        self.cells[row * self.cols + col].as_deref()
    }

    /// Renders the map with one glyph per distinct category (first letter,
    /// uniquified by case/digits) and a legend.
    pub fn render(&self) -> String {
        // Assign glyphs in first-appearance order.
        let mut glyphs: BTreeMap<String, char> = BTreeMap::new();
        let palette: Vec<char> = ('A'..='Z').chain('a'..='z').chain('0'..='9').collect();
        for cell in self.cells.iter().flatten() {
            let next = palette[glyphs.len() % palette.len()];
            glyphs.entry(cell.clone()).or_insert(next);
        }
        let mut out = String::new();
        for r in (0..self.rows).rev() {
            out.push_str(&format!("{:>8.2} |", self.y_of(r)));
            for c in 0..self.cols {
                let ch = self.get(c, r).map(|cat| glyphs[cat]).unwrap_or('.');
                out.push(ch);
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(self.cols)));
        out.push_str(&format!(
            "{:>8}  {:<width$.2}{:>6.2}\n",
            "",
            self.x0,
            self.x1,
            width = self.cols.saturating_sub(4).max(1)
        ));
        for (cat, g) in &glyphs {
            out.push_str(&format!("    {g} = {cat}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_map_to_cell_centres() {
        let m = CategoryMap::new(10, 5, 0.0, 1.0, -10.0, 10.0);
        assert!((m.x_of(0) - 0.05).abs() < 1e-12);
        assert!((m.x_of(9) - 0.95).abs() < 1e-12);
        assert!((m.y_of(0) + 8.0).abs() < 1e-12);
        assert!((m.y_of(4) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_categories_distinct_glyphs() {
        let mut m = CategoryMap::new(4, 1, 0.0, 1.0, 0.0, 1.0);
        m.set(0, 0, "MABC");
        m.set(1, 0, "TDBC");
        m.set(2, 0, "HBC");
        m.set(3, 0, "MABC");
        let s = m.render();
        assert!(s.contains("= MABC"));
        assert!(s.contains("= TDBC"));
        assert!(s.contains("= HBC"));
        // Row line: three distinct glyphs, first == last.
        let row_line = s.lines().next().unwrap();
        let cells: Vec<char> = row_line.chars().skip_while(|&c| c != '|').skip(1).collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], cells[3]);
        assert_ne!(cells[0], cells[1]);
    }

    #[test]
    fn unset_cells_render_dots() {
        let m = CategoryMap::new(3, 1, 0.0, 1.0, 0.0, 1.0);
        assert!(m.render().lines().next().unwrap().contains("..."));
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_set_panics() {
        let mut m = CategoryMap::new(2, 2, 0.0, 1.0, 0.0, 1.0);
        m.set(2, 0, "x");
    }
}
