//! Terminal-friendly reporting: ASCII charts, CSV files and aligned
//! tables.
//!
//! The benchmark binaries regenerate the paper's figures as (a) CSV series
//! suitable for gnuplot/matplotlib, and (b) ASCII charts rendered straight
//! into the terminal/EXPERIMENTS.md, so the reproduction is inspectable
//! without any plotting stack.
//!
//! * [`series`] — named `(x, y)` data series.
//! * [`ascii`] — multi-series line/scatter charts on a character canvas.
//! * [`csv`] — minimal CSV writing (no external dependency).
//! * [`table`] — aligned text tables for protocol comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod heatmap;
pub mod series;
pub mod table;

pub use ascii::Chart;
pub use heatmap::CategoryMap;
pub use series::Series;
pub use table::Table;
