//! Named data series.

/// A named sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name (legend entry / CSV column).
    pub name: String,
    /// The points, in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from points.
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(min x, max x, min y, max y)` over the series, or `None` if empty
    /// or containing non-finite values only.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let finite: Vec<_> = self
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if finite.is_empty() {
            return None;
        }
        let mut b = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in finite {
            b.0 = b.0.min(*x);
            b.1 = b.1.max(*x);
            b.2 = b.2.min(*y);
            b.3 = b.3.max(*y);
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut s = Series::new("demo");
        assert!(s.is_empty());
        s.push(1.0, 2.0);
        s.push(3.0, -1.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bounds_cover_all_points() {
        let s = Series::from_points("b", vec![(0.0, 5.0), (2.0, -1.0), (1.0, 3.0)]);
        assert_eq!(s.bounds(), Some((0.0, 2.0, -1.0, 5.0)));
    }

    #[test]
    fn bounds_skip_non_finite() {
        let s = Series::from_points("n", vec![(f64::NAN, 1.0), (1.0, 2.0)]);
        assert_eq!(s.bounds(), Some((1.0, 1.0, 2.0, 2.0)));
        let empty = Series::new("e");
        assert_eq!(empty.bounds(), None);
    }
}
