//! Aligned plain-text tables.

/// A simple column-aligned table builder.
///
/// ```
/// use bcc_plot::Table;
///
/// let mut t = Table::new(vec!["protocol".into(), "sum rate".into()]);
/// t.row(vec!["MABC".into(), "1.583".into()]);
/// let s = t.render();
/// assert!(s.contains("MABC"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    ///
    /// # Panics
    ///
    /// Panics if the header is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let parts: Vec<String> = (0..ncols)
                .map(|i| format!("{:<width$}", cells[i], width = widths[i]))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(vec!["p".into(), "value".into()]);
        t.row(vec!["MABC".into(), "1.0".into()]);
        t.row(vec!["x".into(), "22.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All lines equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("| p    |"));
    }

    #[test]
    fn markdown_compatible_separator() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().nth(1).unwrap().starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
