//! The quantized-state decision cache: a bounded, set-associative,
//! open-addressing table with LRU eviction inside each probe window.
//!
//! This generalizes the kernel's per-context `LinkCaps` memo (which
//! remembers one operating point) into a shared store of *decisions*
//! keyed by [`QuantKey`]. The table is a flat `Vec` of slots probed
//! linearly over a window of [`WAYS`] slots anchored at the key's hash —
//! no per-entry allocation, no pointer chasing, and a worst-case probe
//! cost of eight comparisons. When a window is full the least-recently
//! used entry *within that window* is evicted, so occupancy can never
//! exceed capacity and a hot key is never displaced by cold traffic in a
//! different window.
//!
//! The cache stores [`Outcome`]s, not just decisions: proven QoS
//! infeasibility at a quantized key is as cacheable as a winning
//! protocol, and serving it from the cache skips the full per-protocol
//! feasibility sweep.
//!
//! # Integrity
//!
//! Every entry carries a checksum over its key and outcome bits,
//! verified on each hit. A mismatch — which the deterministic chaos
//! plans inject via [`DecisionCache::insert_corrupted`], and which in
//! production would mean a memory fault — invalidates the entry and
//! reports a miss instead of serving a corrupted decision; the caller
//! re-solves and the answer stream stays correct. Detections are
//! counted in [`DecisionCache::corruptions_detected`].

use crate::quant::QuantKey;
use crate::query::DecisionCore;

/// Associativity: how many consecutive slots one key may occupy or probe.
pub const WAYS: usize = 8;

/// The cached result of solving one quantized query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The selection succeeded with this winning operating point.
    Decided(DecisionCore),
    /// The QoS floor was proven unachievable by every protocol.
    Infeasible,
}

impl Outcome {
    /// Folds the outcome's exact bit content into a 64-bit word for the
    /// entry checksum (SplitMix64-style finalisers over every field, so
    /// any single-bit flip changes the digest).
    fn fold_bits(&self) -> u64 {
        fn mix(mut h: u64, w: u64) -> u64 {
            let mut z = h ^ w.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
            h
        }
        match self {
            Outcome::Infeasible => 0x1BFE_A51B_1E00_0001,
            Outcome::Decided(core) => {
                let mut h = mix(0x0DEC_1DED, core.protocol as u64);
                h = mix(h, core.sum_rate.to_bits());
                h = mix(h, core.ra.to_bits());
                h = mix(h, core.rb.to_bits());
                for &d in core.durations.as_slice() {
                    h = mix(h, d.to_bits());
                }
                mix(h, core.durations.as_slice().len() as u64)
            }
        }
    }
}

/// The entry checksum: key digest mixed with the outcome's bit content.
fn checksum(key: &QuantKey, outcome: &Outcome) -> u64 {
    key.hash64() ^ outcome.fold_bits().rotate_left(17)
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: QuantKey,
    outcome: Outcome,
    last_used: u64,
    /// Integrity digest over `key` and `outcome`, verified on every hit.
    checksum: u64,
}

/// A bounded LRU cache from quantized query keys to solve outcomes.
#[derive(Debug)]
pub struct DecisionCache {
    slots: Vec<Option<Entry>>,
    mask: usize,
    tick: u64,
    len: usize,
    evictions: u64,
    corruptions_detected: u64,
}

impl DecisionCache {
    /// Creates a cache holding at most `capacity` entries (rounded up to
    /// a power of two, minimum [`WAYS`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(WAYS);
        DecisionCache {
            slots: vec![None; cap],
            mask: cap - 1,
            tick: 0,
            len: 0,
            evictions: 0,
            corruptions_detected: 0,
        }
    }

    /// The maximum number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The number of entries currently stored (never exceeds capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many entries have been evicted to make room since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// How many hits found a checksum mismatch and were invalidated
    /// instead of served (see the module docs on integrity).
    pub fn corruptions_detected(&self) -> u64 {
        self.corruptions_detected
    }

    /// Looks up `key`, refreshing its recency on a hit.
    ///
    /// The whole window is probed even past empty slots: eviction can
    /// punch holes between an anchor and a surviving entry, so an empty
    /// slot does not prove absence. A hit whose checksum does not verify
    /// is invalidated and reported as a miss — a corrupted decision is
    /// never served.
    pub fn get(&mut self, key: &QuantKey) -> Option<Outcome> {
        let anchor = key.hash64() as usize;
        for i in 0..WAYS {
            let idx = (anchor + i) & self.mask;
            if let Some(entry) = &mut self.slots[idx] {
                if entry.key == *key {
                    if entry.checksum != checksum(key, &entry.outcome) {
                        self.slots[idx] = None;
                        self.len -= 1;
                        self.corruptions_detected += 1;
                        return None;
                    }
                    self.tick += 1;
                    entry.last_used = self.tick;
                    return Some(entry.outcome);
                }
            }
        }
        None
    }

    /// Inserts (or refreshes) `key → outcome`. If the key's probe window
    /// is full, the least-recently-used entry in the window is evicted.
    pub fn insert(&mut self, key: QuantKey, outcome: Outcome) {
        let digest = checksum(&key, &outcome);
        self.insert_with_checksum(key, outcome, digest);
    }

    /// Inserts `key → outcome` with a deliberately wrong checksum — the
    /// deterministic chaos hook modelling a memory fault between write
    /// and read. The next [`get`](DecisionCache::get) of the key detects
    /// the mismatch, invalidates the entry and reports a miss.
    pub fn insert_corrupted(&mut self, key: QuantKey, outcome: Outcome) {
        let digest = checksum(&key, &outcome) ^ 0x0001_0000_0000_0001;
        self.insert_with_checksum(key, outcome, digest);
    }

    fn insert_with_checksum(&mut self, key: QuantKey, outcome: Outcome, digest: u64) {
        self.tick += 1;
        let anchor = key.hash64() as usize;
        let mut empty: Option<usize> = None;
        let mut lru: usize = anchor & self.mask;
        let mut lru_used = u64::MAX;
        for i in 0..WAYS {
            let idx = (anchor + i) & self.mask;
            match &self.slots[idx] {
                Some(entry) => {
                    if entry.key == key {
                        self.slots[idx] = Some(Entry {
                            key,
                            outcome,
                            last_used: self.tick,
                            checksum: digest,
                        });
                        return;
                    }
                    if entry.last_used < lru_used {
                        lru_used = entry.last_used;
                        lru = idx;
                    }
                }
                None => {
                    if empty.is_none() {
                        empty = Some(idx);
                    }
                }
            }
        }
        let idx = match empty {
            Some(idx) => {
                self.len += 1;
                idx
            }
            None => {
                self.evictions += 1;
                lru
            }
        };
        self.slots[idx] = Some(Entry {
            key,
            outcome,
            last_used: self.tick,
            checksum: digest,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantSpec;
    use crate::query::Query;
    use bcc_channel::{ChannelState, PowerSplit};
    use bcc_core::constraint::PhaseVec;
    use bcc_core::protocol::Protocol;

    fn key_for(gab: f64) -> QuantKey {
        let q = Query::new(
            ChannelState::new(gab, 1.0, 1.0),
            PowerSplit::symmetric(10.0),
        );
        QuantSpec::strict().snap_query(&q).0
    }

    fn outcome(rate: f64) -> Outcome {
        Outcome::Decided(DecisionCore {
            protocol: Protocol::DirectTransmission,
            sum_rate: rate,
            ra: rate / 2.0,
            rb: rate / 2.0,
            durations: PhaseVec::from([1.0, 0.0]),
        })
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let mut cache = DecisionCache::with_capacity(64);
        let k = key_for(1.0);
        assert_eq!(cache.get(&k), None);
        cache.insert(k, outcome(2.0));
        assert_eq!(cache.get(&k), Some(outcome(2.0)));
        // Overwrite refreshes in place, no growth.
        cache.insert(k, outcome(3.0));
        assert_eq!(cache.get(&k), Some(outcome(3.0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn infeasible_outcomes_are_first_class_citizens() {
        let mut cache = DecisionCache::with_capacity(64);
        let k = key_for(0.5);
        cache.insert(k, Outcome::Infeasible);
        assert_eq!(cache.get(&k), Some(Outcome::Infeasible));
    }

    #[test]
    fn occupancy_is_bounded_and_evictions_are_counted() {
        let mut cache = DecisionCache::with_capacity(WAYS); // minimum size
        assert_eq!(cache.capacity(), WAYS);
        for i in 0..10 * WAYS {
            cache.insert(key_for(1.0 + i as f64), outcome(i as f64));
            assert!(cache.len() <= cache.capacity());
        }
        // With capacity == WAYS every window is the whole table, so all
        // inserts past the first WAYS must have evicted.
        assert_eq!(cache.evictions(), (10 * WAYS - WAYS) as u64);
        assert_eq!(cache.len(), WAYS);
    }

    #[test]
    fn lru_within_window_evicts_the_coldest_entry() {
        // capacity == WAYS: one shared window, full LRU semantics.
        let mut cache = DecisionCache::with_capacity(WAYS);
        let keys: Vec<_> = (0..WAYS).map(|i| key_for(1.0 + i as f64)).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, outcome(i as f64));
        }
        // Touch everything except keys[3], making it the LRU.
        for (i, &k) in keys.iter().enumerate() {
            if i != 3 {
                assert!(cache.get(&k).is_some());
            }
        }
        let newcomer = key_for(100.0);
        cache.insert(newcomer, outcome(99.0));
        assert_eq!(cache.get(&keys[3]), None, "the LRU entry was evicted");
        assert!(cache.get(&newcomer).is_some());
        for (i, &k) in keys.iter().enumerate() {
            if i != 3 {
                assert!(cache.get(&k).is_some(), "hot entry {i} survived");
            }
        }
    }

    #[test]
    fn lookups_survive_holes_punched_by_eviction() {
        let mut cache = DecisionCache::with_capacity(WAYS);
        for i in 0..2 * WAYS {
            cache.insert(key_for(1.0 + i as f64), outcome(i as f64));
        }
        // Everything inserted in the last full round is still findable
        // even though earlier evictions reordered the window.
        let mut found = 0;
        for i in 0..2 * WAYS {
            if cache.get(&key_for(1.0 + i as f64)).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, WAYS, "exactly one table's worth survives");
    }

    #[test]
    fn corrupted_entries_are_detected_and_invalidated_not_served() {
        let mut cache = DecisionCache::with_capacity(64);
        let k = key_for(2.0);
        cache.insert_corrupted(k, outcome(1.25));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.corruptions_detected(), 0);
        // The read detects the bad checksum, drops the entry and misses.
        assert_eq!(cache.get(&k), None);
        assert_eq!(cache.corruptions_detected(), 1);
        assert_eq!(cache.len(), 0, "the corrupted entry was invalidated");
        // A clean re-insert heals the key.
        cache.insert(k, outcome(1.25));
        assert_eq!(cache.get(&k), Some(outcome(1.25)));
        assert_eq!(cache.corruptions_detected(), 1);
    }

    #[test]
    fn checksum_distinguishes_outcomes_and_keys() {
        let k1 = key_for(3.0);
        let k2 = key_for(4.0);
        assert_ne!(checksum(&k1, &outcome(1.0)), checksum(&k1, &outcome(2.0)));
        assert_ne!(checksum(&k1, &outcome(1.0)), checksum(&k2, &outcome(1.0)));
        assert_ne!(
            checksum(&k1, &outcome(1.0)),
            checksum(&k1, &Outcome::Infeasible)
        );
        // Duration bits matter too (same rates, different schedule).
        let mut core = match outcome(1.0) {
            Outcome::Decided(c) => c,
            Outcome::Infeasible => unreachable!(),
        };
        let base = checksum(&k1, &Outcome::Decided(core));
        core.durations = PhaseVec::from([0.5, 0.5]);
        assert_ne!(base, checksum(&k1, &Outcome::Decided(core)));
    }
}
