//! The single-threaded serve path: snap → probe the cache → solve on a
//! miss → cache the outcome.
//!
//! [`Engine`] owns one [`SolveCtx`] and one [`DecisionCache`] and
//! answers queries one at a time — the closed-loop path a latency bench
//! measures. The batched, parallel path lives in
//! [`Server`](crate::Server), which shares the same cache discipline but
//! fans misses across workers.

use crate::cache::{DecisionCache, Outcome};
use crate::quant::QuantSpec;
use crate::query::{Decision, DecisionCore, DegradeReason, Query, ServeError, ServedFrom};
use crate::stats::ServeStats;
use bcc_core::kernel::{kernel_hits_local, SolveRequest};
use bcc_core::protocol::Protocol;
use bcc_core::{CoreError, Objective, SolveCtx};
use bcc_num::faults::{self, FaultPlan, FaultScope, FaultSite};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tunables for an [`Engine`] or [`Server`](crate::Server).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// How channel states are snapped to cache keys.
    pub quant: QuantSpec,
    /// Decision-cache capacity in entries.
    pub cache_capacity: usize,
    /// Submission-queue bound (batched path only); a full queue rejects.
    pub queue_capacity: usize,
    /// Worker threads for batch drains; `None` follows `BCC_THREADS`.
    pub threads: Option<usize>,
    /// Deterministic fault-injection schedule (chaos testing). The empty
    /// plan — the default — leaves every serve bit-identical to a build
    /// without the hooks.
    pub faults: FaultPlan,
    /// Per-query simplex-solve budget. A miss whose full protocol
    /// selection needs more LP solves than this degrades to the
    /// conservative direct-transmission fallback
    /// ([`ServedFrom::Degraded`] with [`DegradeReason::Budget`]).
    /// `None` — the default — never degrades on cost.
    pub solve_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            quant: QuantSpec::default(),
            cache_capacity: 65_536,
            queue_capacity: 8_192,
            threads: None,
            faults: FaultPlan::none(),
            solve_budget: None,
        }
    }
}

impl ServeConfig {
    /// Replaces the quantization spec.
    pub fn quant(mut self, quant: QuantSpec) -> Self {
        self.quant = quant;
        self
    }

    /// Replaces the cache capacity.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Replaces the submission-queue bound.
    pub fn queue_capacity(mut self, entries: usize) -> Self {
        self.queue_capacity = entries;
        self
    }

    /// Pins batch drains to `threads` workers instead of `BCC_THREADS`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Arms a deterministic fault-injection plan (see
    /// [`bcc_num::faults`]). Serving under a non-empty plan exercises
    /// the degradation paths; the schedule is bit-reproducible across
    /// thread counts, batch sizes and replays.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Caps each miss at `solves` simplex LP solves before degrading to
    /// the conservative direct-transmission fallback. The LP-solve count
    /// of a query is a pure function of the query (never of warm-start
    /// state or scheduling), so budget verdicts are deterministic.
    pub fn solve_budget(mut self, solves: u64) -> Self {
        self.solve_budget = Some(solves);
        self
    }
}

/// What one fresh solve cost, alongside its outcome.
pub(crate) struct SolvedMiss {
    pub outcome: Result<Outcome, ServeError>,
    pub kernel_solves: u64,
    pub simplex_solves: u64,
    pub warm_hits: u64,
    pub pivots: u64,
}

/// Solves one already-snapped query on `ctx`, counting what the solve
/// cost (kernel vs simplex, warm hits, pivots) via the thread-local
/// counters. Shared by the serial engine and the batch workers.
pub(crate) fn solve_counted(ctx: &mut SolveCtx, snapped: &Query) -> SolvedMiss {
    let kernel_before = kernel_hits_local();
    let lp_before = bcc_lp::stats::local_snapshot();
    let net = snapped.network();
    let outcome = match ctx.solve_best(
        &net,
        &Protocol::ALL,
        Objective::SumRate,
        snapped.bound,
        snapped.floor,
    ) {
        Ok(Some(out)) => Ok(Outcome::Decided(DecisionCore::from_solution(
            &out.sum_rate_solution(),
        ))),
        Ok(None) => Ok(Outcome::Infeasible),
        Err(e) => Err(ServeError::Solver(e)),
    };
    let lp = bcc_lp::stats::local_snapshot().delta_since(&lp_before);
    SolvedMiss {
        outcome,
        kernel_solves: kernel_hits_local().wrapping_sub(kernel_before),
        simplex_solves: lp.solves,
        warm_hits: lp.warm_hits,
        pivots: lp.pivots,
    }
}

/// A [`SolvedMiss`] plus degradation provenance: `degraded` is `Some`
/// when the outcome came from the conservative fallback rather than the
/// full protocol selection. Degraded outcomes are never cached.
pub(crate) struct GuardedMiss {
    pub outcome: Result<Outcome, ServeError>,
    pub degraded: Option<DegradeReason>,
    pub kernel_solves: u64,
    pub simplex_solves: u64,
    pub warm_hits: u64,
    pub pivots: u64,
}

impl GuardedMiss {
    pub(crate) fn clean(solved: SolvedMiss) -> GuardedMiss {
        GuardedMiss {
            outcome: solved.outcome,
            degraded: None,
            kernel_solves: solved.kernel_solves,
            simplex_solves: solved.simplex_solves,
            warm_hits: solved.warm_hits,
            pivots: solved.pivots,
        }
    }
}

/// Solves one snapped query under an armed fault plan and/or solve
/// budget, degrading gracefully instead of propagating chaos:
///
/// 1. With an empty plan and no budget this is exactly [`solve_counted`]
///    — the fault-free instruction stream is untouched.
/// 2. Otherwise the solve runs inside a [`FaultScope`] keyed by `token`
///    (the quantized-key hash), wrapped in `catch_unwind`, with up to
///    **two attempts**: an injected/organic iteration limit, an injected
///    solver fault, or a (caught) panic triggers one retry, which
///    re-rolls the transient fault draws.
/// 3. If both attempts fail — or the successful solve exceeded the
///    simplex budget — the query degrades to the closed-form
///    direct-transmission fallback, computed **outside** the fault scope
///    so item-fated poison cannot reach it. The fallback answer is
///    always feasible when returned (DT is one of the candidates the
///    full selection maximises over, so it is provably ≤ the true
///    optimum); if DT cannot meet the query's QoS floor the honest
///    answer is [`ServeError::DegradedUnavailable`].
pub(crate) fn solve_guarded(
    ctx: &mut SolveCtx,
    snapped: &Query,
    token: u64,
    plan: &FaultPlan,
    budget: Option<u64>,
) -> GuardedMiss {
    if plan.is_empty() && budget.is_none() {
        return GuardedMiss::clean(solve_counted(ctx, snapped));
    }
    let mut kernel_solves = 0u64;
    let mut simplex_solves = 0u64;
    let mut warm_hits = 0u64;
    let mut pivots = 0u64;
    let mut fall = None;
    {
        let _scope = FaultScope::enter(plan, token);
        for _attempt in 0..2u32 {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // The injected panic fires before the solve touches the
                // context, so an unwound attempt leaves `ctx` coherent.
                if faults::should_inject(FaultSite::WorkerPanic) {
                    panic!("injected worker panic (deterministic chaos)");
                }
                solve_counted(ctx, snapped)
            }));
            match attempt {
                Ok(solved) => {
                    kernel_solves += solved.kernel_solves;
                    simplex_solves += solved.simplex_solves;
                    warm_hits += solved.warm_hits;
                    pivots += solved.pivots;
                    match solved.outcome {
                        Ok(outcome) => {
                            if budget.is_some_and(|b| solved.simplex_solves > b) {
                                // The LP-solve count of a query is a pure
                                // function of the query, so a retry would
                                // exceed the budget identically: degrade now.
                                fall = Some(DegradeReason::Budget);
                                break;
                            }
                            return GuardedMiss {
                                outcome: Ok(outcome),
                                degraded: None,
                                kernel_solves,
                                simplex_solves,
                                warm_hits,
                                pivots,
                            };
                        }
                        Err(ServeError::Solver(e)) if e.is_resource_limit() => {
                            fall = Some(DegradeReason::Budget);
                        }
                        Err(ServeError::Solver(e)) if e.is_injected() => {
                            fall = Some(DegradeReason::Fault);
                        }
                        Err(e) => {
                            // A genuine solver failure is a bug report,
                            // not a degradation trigger.
                            return GuardedMiss {
                                outcome: Err(e),
                                degraded: None,
                                kernel_solves,
                                simplex_solves,
                                warm_hits,
                                pivots,
                            };
                        }
                    }
                }
                Err(_payload) => {
                    fall = Some(DegradeReason::Panic);
                }
            }
        }
    }
    let reason = fall.expect("both attempts failed with a recorded reason");
    let kernel_before = kernel_hits_local();
    let lp_before = bcc_lp::stats::local_snapshot();
    let net = snapped.network();
    let req = SolveRequest::sum_rate(Protocol::DirectTransmission)
        .with_bound(snapped.bound)
        .with_floor(snapped.floor);
    let outcome = match ctx.solve_one(&net, req) {
        Ok(out) => Ok(Outcome::Decided(DecisionCore::from_solution(
            &out.sum_rate_solution(),
        ))),
        Err(e) if e.is_infeasible() || matches!(e, CoreError::RateUnachievable { .. }) => {
            Err(ServeError::DegradedUnavailable { reason })
        }
        Err(e) => Err(ServeError::Solver(e)),
    };
    let lp = bcc_lp::stats::local_snapshot().delta_since(&lp_before);
    GuardedMiss {
        outcome,
        degraded: Some(reason),
        kernel_solves: kernel_solves + kernel_hits_local().wrapping_sub(kernel_before),
        simplex_solves: simplex_solves + lp.solves,
        warm_hits: warm_hits + lp.warm_hits,
        pivots: pivots + lp.pivots,
    }
}

/// The per-key cache fates under `plan`: `(evict_fated, corrupt_fated)`.
/// Evaluated in a scope of their own so any code path — serial serve,
/// batch probe, batch commit — reaches the same verdict for a key.
pub(crate) fn cache_fates(plan: &FaultPlan, token: u64) -> (bool, bool) {
    if plan.is_empty() {
        return (false, false);
    }
    let _scope = FaultScope::enter(plan, token);
    (
        faults::site_fated(FaultSite::CacheEvict),
        faults::site_fated(FaultSite::CacheCorrupt),
    )
}

/// The cache-oracle solve: what a fresh context computes for `query`
/// under `spec`'s quantization, with no cache involved. The
/// cache-correctness property test compares every cache hit against
/// this.
pub fn cold_solve(
    ctx: &mut SolveCtx,
    query: &Query,
    spec: &QuantSpec,
) -> Result<Option<DecisionCore>, ServeError> {
    let (_, snapped) = spec.snap_query(query);
    let net = snapped.network();
    match ctx.solve_best(
        &net,
        &Protocol::ALL,
        Objective::SumRate,
        snapped.bound,
        snapped.floor,
    ) {
        Ok(Some(out)) => Ok(Some(DecisionCore::from_solution(&out.sum_rate_solution()))),
        Ok(None) => Ok(None),
        Err(e) => Err(ServeError::Solver(e)),
    }
}

/// A serial protocol-selection engine with a quantized decision cache.
#[derive(Debug)]
pub struct Engine {
    ctx: SolveCtx,
    cache: DecisionCache,
    spec: QuantSpec,
    faults: FaultPlan,
    solve_budget: Option<u64>,
}

impl Engine {
    /// Creates an engine per `config` (the queue/thread fields are
    /// ignored here; they configure the batched [`Server`](crate::Server)).
    pub fn new(config: &ServeConfig) -> Self {
        Engine {
            ctx: SolveCtx::new(),
            cache: DecisionCache::with_capacity(config.cache_capacity),
            spec: config.quant,
            faults: config.faults,
            solve_budget: config.solve_budget,
        }
    }

    /// The engine's quantization spec.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The decision cache (for occupancy/eviction introspection).
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    /// Mutable cache access for the batched server's probe/commit phases.
    pub(crate) fn cache_mut(&mut self) -> &mut DecisionCache {
        &mut self.cache
    }

    /// The armed fault plan (empty unless chaos testing).
    pub(crate) fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The per-query simplex budget, if any.
    pub(crate) fn solve_budget(&self) -> Option<u64> {
        self.solve_budget
    }

    /// Answers one query.
    ///
    /// The query is [validated](Query::validate) (malformed queries are
    /// refused with [`ServeError::InvalidQuery`] before touching the
    /// solver) and snapped to its quantized key; a cache hit returns the
    /// stored decision bit-for-bit (tagged [`ServedFrom::Cache`]), a miss
    /// solves the snapped query on the engine's context, caches the
    /// outcome — including proven infeasibility — and tags the answer
    /// [`ServedFrom::Kernel`]. Solver *errors* are returned but never
    /// cached.
    ///
    /// Under an armed [`ServeConfig::faults`] plan or
    /// [`ServeConfig::solve_budget`], a miss whose full solve cannot
    /// complete degrades to the conservative direct-transmission
    /// fallback, tagged [`ServedFrom::Degraded`] and **never cached** —
    /// see [`ServedFrom::Degraded`] for the guarantees.
    pub fn serve(&mut self, query: &Query) -> Result<Decision, ServeError> {
        let mut delta = ServeStats {
            queries: 1,
            ..ServeStats::zero()
        };
        if let Err(e) = query.validate() {
            delta.validated_rejects = 1;
            crate::stats::record(&delta);
            return Err(e);
        }
        let (key, snapped) = self.spec.snap_query(query);
        let token = key.hash64();
        let (evict_fated, corrupt_fated) = cache_fates(&self.faults, token);
        let cached = if evict_fated {
            None
        } else {
            self.cache.get(&key)
        };
        let result = match cached {
            Some(outcome) => {
                delta.cache_hits = 1;
                match outcome {
                    Outcome::Decided(core) => Ok(core.tagged(ServedFrom::Cache)),
                    Outcome::Infeasible => Err(ServeError::Infeasible),
                }
            }
            None => {
                delta.cache_misses = 1;
                let evictions_before = self.cache.evictions();
                let solved = solve_guarded(
                    &mut self.ctx,
                    &snapped,
                    token,
                    &self.faults,
                    self.solve_budget,
                );
                delta.kernel_solves = solved.kernel_solves;
                delta.simplex_solves = solved.simplex_solves;
                let result = match (solved.degraded, solved.outcome) {
                    (Some(reason), Ok(Outcome::Decided(core))) => {
                        delta.degraded = 1;
                        Ok(core.tagged(ServedFrom::Degraded { reason }))
                    }
                    (Some(_), Ok(Outcome::Infeasible)) => {
                        unreachable!("the fallback maps infeasibility to DegradedUnavailable")
                    }
                    (Some(_), Err(e)) => {
                        delta.degraded = 1;
                        Err(e)
                    }
                    (None, Ok(outcome)) => {
                        if !evict_fated {
                            if corrupt_fated {
                                self.cache.insert_corrupted(key, outcome);
                            } else {
                                self.cache.insert(key, outcome);
                            }
                        }
                        match outcome {
                            Outcome::Decided(core) => Ok(core.tagged(ServedFrom::Kernel)),
                            Outcome::Infeasible => Err(ServeError::Infeasible),
                        }
                    }
                    (None, Err(e)) => Err(e),
                };
                delta.evictions = self.cache.evictions().wrapping_sub(evictions_before);
                result
            }
        };
        crate::stats::record(&delta);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::{ChannelState, PowerSplit};

    fn q(gab: f64) -> Query {
        Query::new(
            ChannelState::new(gab, 1.0, 3.16),
            PowerSplit::symmetric(10.0),
        )
    }

    #[test]
    fn second_serve_of_the_same_state_hits_and_is_bit_identical() {
        let mut engine = Engine::new(&ServeConfig::default());
        let d1 = engine.serve(&q(0.2)).unwrap();
        let d2 = engine.serve(&q(0.2)).unwrap();
        assert_eq!(d1.served_from, ServedFrom::Kernel);
        assert_eq!(d2.served_from, ServedFrom::Cache);
        assert_eq!(d1.sum_rate.to_bits(), d2.sum_rate.to_bits());
        assert_eq!(d1.ra.to_bits(), d2.ra.to_bits());
        assert_eq!(d1.rb.to_bits(), d2.rb.to_bits());
        assert_eq!(d1.protocol, d2.protocol);
        assert_eq!(d1.durations, d2.durations);
    }

    #[test]
    fn nearby_states_share_a_cache_cell_and_thus_an_answer() {
        let mut engine = Engine::new(&ServeConfig::default());
        let d1 = engine.serve(&q(0.2)).unwrap();
        // 0.01 dB away on a 0.25 dB grid: same cell, served from cache.
        let d2 = engine.serve(&q(0.2 * 1.0023)).unwrap();
        assert_eq!(d2.served_from, ServedFrom::Cache);
        assert_eq!(d1.sum_rate.to_bits(), d2.sum_rate.to_bits());
    }

    #[test]
    fn strict_mode_never_shares_across_distinct_bits() {
        let config = ServeConfig::default().quant(QuantSpec::strict());
        let mut engine = Engine::new(&config);
        engine.serve(&q(0.2)).unwrap();
        let d2 = engine.serve(&q(0.2 * 1.0023)).unwrap();
        assert_eq!(d2.served_from, ServedFrom::Kernel);
        let d3 = engine.serve(&q(0.2)).unwrap();
        assert_eq!(d3.served_from, ServedFrom::Cache);
    }

    #[test]
    fn infeasible_floors_are_cached_as_infeasible() {
        let mut engine = Engine::new(&ServeConfig::default());
        let hopeless = q(0.2).with_floor(50.0, 50.0);
        assert_eq!(engine.serve(&hopeless), Err(ServeError::Infeasible));
        let misses_before = engine.cache().len();
        assert_eq!(engine.serve(&hopeless), Err(ServeError::Infeasible));
        assert_eq!(
            engine.cache().len(),
            misses_before,
            "the second infeasible serve must not re-solve or re-insert"
        );
    }

    #[test]
    fn serve_moves_the_stats_counters() {
        let mut engine = Engine::new(&ServeConfig::default());
        let ((), delta) = crate::stats::scoped(|| {
            engine.serve(&q(0.3)).unwrap();
            engine.serve(&q(0.3)).unwrap();
            engine.serve(&q(0.7)).unwrap();
        });
        assert_eq!(delta.queries, 3);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(delta.cache_misses, 2);
        // A floor-free inner-bound miss sweeps all four protocols:
        // closed-form kernel where available, LP for the rest.
        assert!(delta.kernel_solves > 0);
    }

    /// Installs a panic hook (once) that swallows the *injected* chaos
    /// panics so they do not spray backtraces over the test output, while
    /// still reporting genuine panics.
    fn silence_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected worker panic"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn invalid_queries_are_refused_before_the_solver() {
        let mut engine = Engine::new(&ServeConfig::default());
        let bad = q(0.2).with_floor(f64::NAN, 0.1);
        let (result, delta) = crate::stats::scoped(|| engine.serve(&bad));
        assert!(matches!(result, Err(ServeError::InvalidQuery { .. })));
        assert_eq!(delta.validated_rejects, 1);
        assert_eq!(delta.cache_misses, 0, "no solve was attempted");
        assert_eq!(engine.cache().len(), 0, "nothing was cached");
    }

    #[test]
    fn guarded_path_without_firing_faults_is_bit_identical() {
        // A solve budget arms the guarded path (scope, catch_unwind,
        // counting) without ever degrading; the answers must be bitwise
        // what the plain path computes.
        let mut plain = Engine::new(&ServeConfig::default());
        let mut guarded = Engine::new(&ServeConfig::default().solve_budget(u64::MAX));
        for gab in [0.2, 0.7, 1.4] {
            let a = plain.serve(&q(gab).with_floor(0.05, 0.05)).unwrap();
            let b = guarded.serve(&q(gab).with_floor(0.05, 0.05)).unwrap();
            assert_eq!(a.sum_rate.to_bits(), b.sum_rate.to_bits());
            assert_eq!(a.ra.to_bits(), b.ra.to_bits());
            assert_eq!(a.rb.to_bits(), b.rb.to_bits());
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.served_from, b.served_from);
        }
    }

    #[test]
    fn zero_budget_degrades_floored_queries_and_never_caches_them() {
        let mut engine = Engine::new(&ServeConfig::default().solve_budget(0));
        let mut oracle = Engine::new(&ServeConfig::default());
        // A modest floor forces the LP path, whose solve count exceeds 0.
        let floored = q(0.5).with_floor(0.05, 0.05);
        let (d, delta) = crate::stats::scoped(|| engine.serve(&floored).unwrap());
        assert_eq!(
            d.served_from,
            ServedFrom::Degraded {
                reason: crate::DegradeReason::Budget
            }
        );
        assert_eq!(d.protocol, Protocol::DirectTransmission);
        assert_eq!(delta.degraded, 1);
        assert_eq!(engine.cache().len(), 0, "degraded answers are never cached");
        // Conservative: feasible (to LP tolerance), and no better than
        // the full optimum.
        let full = oracle.serve(&floored).unwrap();
        assert!(
            d.ra >= 0.05 - 1e-9 && d.rb >= 0.05 - 1e-9,
            "degraded answer meets floor: ra={}, rb={}",
            d.ra,
            d.rb
        );
        assert!(d.sum_rate <= full.sum_rate + 1e-12);
        // The next serve retries (still a miss) instead of hitting a
        // cached degraded answer.
        let (_, delta2) = crate::stats::scoped(|| engine.serve(&floored).unwrap());
        assert_eq!(delta2.cache_misses, 1);
        // Floor-free queries stay on the closed-form path and do not
        // degrade even under a zero budget.
        let clean = engine.serve(&q(0.5)).unwrap();
        assert_eq!(clean.served_from, ServedFrom::Kernel);
    }

    #[test]
    fn degraded_unavailable_when_dt_cannot_meet_the_floor() {
        // Pick a floor DT cannot meet but a relay protocol can: the full
        // solve decides it, the zero-budget engine must answer honestly
        // that its fallback cannot.
        let mut oracle = Engine::new(&ServeConfig::default());
        let mut probe = None;
        for floor in [0.2, 0.35, 0.5, 0.8] {
            let cand = q(0.05).with_floor(floor, floor);
            if let Ok(full) = oracle.serve(&cand) {
                let mut dt = Engine::new(&ServeConfig::default().solve_budget(0));
                if let Err(ServeError::DegradedUnavailable { .. }) = dt.serve(&cand) {
                    probe = Some((cand, full));
                    break;
                }
            }
        }
        let (cand, _full) = probe.expect("some floor separates DT from the best relay protocol");
        let mut engine = Engine::new(&ServeConfig::default().solve_budget(0));
        let (result, delta) = crate::stats::scoped(|| engine.serve(&cand));
        assert!(matches!(
            result,
            Err(ServeError::DegradedUnavailable {
                reason: crate::DegradeReason::Budget
            })
        ));
        assert_eq!(delta.degraded, 1);
        assert_eq!(engine.cache().len(), 0);
    }

    #[test]
    fn evict_fated_keys_are_never_served_from_cache() {
        let plan = FaultPlan::new(0xE71C).with(FaultSite::CacheEvict, 1.0, 1);
        let mut engine = Engine::new(&ServeConfig::default().faults(plan));
        let mut clean = Engine::new(&ServeConfig::default());
        let want = clean.serve(&q(0.3)).unwrap();
        let (_, delta) = crate::stats::scoped(|| {
            for _ in 0..3 {
                let d = engine.serve(&q(0.3)).unwrap();
                assert_eq!(d.sum_rate.to_bits(), want.sum_rate.to_bits());
                assert_eq!(d.served_from, ServedFrom::Kernel, "never from cache");
            }
        });
        assert_eq!(delta.cache_hits, 0);
        assert_eq!(delta.cache_misses, 3);
        assert_eq!(engine.cache().len(), 0, "fated keys are never admitted");
    }

    #[test]
    fn corrupt_fated_keys_are_detected_and_resolved() {
        let plan = FaultPlan::new(0xC0FF).with(FaultSite::CacheCorrupt, 1.0, 1);
        let mut engine = Engine::new(&ServeConfig::default().faults(plan));
        let mut clean = Engine::new(&ServeConfig::default());
        let d1 = engine.serve(&q(0.3)).unwrap();
        assert_eq!(engine.cache().len(), 1, "the corrupt entry is stored");
        // The second serve detects the bad checksum, re-solves, and still
        // answers bit-identically to a clean engine.
        let d2 = engine.serve(&q(0.3)).unwrap();
        let want = clean.serve(&q(0.3)).unwrap();
        assert_eq!(d2.served_from, ServedFrom::Kernel);
        assert_eq!(d2.sum_rate.to_bits(), d1.sum_rate.to_bits());
        assert_eq!(d2.sum_rate.to_bits(), want.sum_rate.to_bits());
        assert!(engine.cache().corruptions_detected() >= 1);
    }

    #[test]
    fn injected_panics_degrade_after_the_retry() {
        silence_panics();
        // p = 1 with budget 2: both attempts panic, the query degrades.
        let plan = FaultPlan::new(0xBAD).with(FaultSite::WorkerPanic, 1.0, 2);
        let mut engine = Engine::new(&ServeConfig::default().faults(plan));
        let d = engine.serve(&q(0.4)).unwrap();
        assert_eq!(
            d.served_from,
            ServedFrom::Degraded {
                reason: crate::DegradeReason::Panic
            }
        );
        assert_eq!(d.protocol, Protocol::DirectTransmission);
        assert_eq!(engine.cache().len(), 0);
        // p = 1 with budget 1: the first attempt panics, the retry's
        // draw finds the budget spent and completes the full solve.
        let plan = FaultPlan::new(0xBAD).with(FaultSite::WorkerPanic, 1.0, 1);
        let mut engine = Engine::new(&ServeConfig::default().faults(plan));
        let mut clean = Engine::new(&ServeConfig::default());
        let d = engine.serve(&q(0.4)).unwrap();
        let want = clean.serve(&q(0.4)).unwrap();
        assert_eq!(d.served_from, ServedFrom::Kernel);
        assert_eq!(d.sum_rate.to_bits(), want.sum_rate.to_bits());
    }
}
