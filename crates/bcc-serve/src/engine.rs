//! The single-threaded serve path: snap → probe the cache → solve on a
//! miss → cache the outcome.
//!
//! [`Engine`] owns one [`SolveCtx`] and one [`DecisionCache`] and
//! answers queries one at a time — the closed-loop path a latency bench
//! measures. The batched, parallel path lives in
//! [`Server`](crate::Server), which shares the same cache discipline but
//! fans misses across workers.

use crate::cache::{DecisionCache, Outcome};
use crate::quant::QuantSpec;
use crate::query::{Decision, DecisionCore, Query, ServeError, ServedFrom};
use crate::stats::ServeStats;
use bcc_core::kernel::kernel_hits_local;
use bcc_core::protocol::Protocol;
use bcc_core::{Objective, SolveCtx};

/// Tunables for an [`Engine`] or [`Server`](crate::Server).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// How channel states are snapped to cache keys.
    pub quant: QuantSpec,
    /// Decision-cache capacity in entries.
    pub cache_capacity: usize,
    /// Submission-queue bound (batched path only); a full queue rejects.
    pub queue_capacity: usize,
    /// Worker threads for batch drains; `None` follows `BCC_THREADS`.
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            quant: QuantSpec::default(),
            cache_capacity: 65_536,
            queue_capacity: 8_192,
            threads: None,
        }
    }
}

impl ServeConfig {
    /// Replaces the quantization spec.
    pub fn quant(mut self, quant: QuantSpec) -> Self {
        self.quant = quant;
        self
    }

    /// Replaces the cache capacity.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Replaces the submission-queue bound.
    pub fn queue_capacity(mut self, entries: usize) -> Self {
        self.queue_capacity = entries;
        self
    }

    /// Pins batch drains to `threads` workers instead of `BCC_THREADS`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// What one fresh solve cost, alongside its outcome.
pub(crate) struct SolvedMiss {
    pub outcome: Result<Outcome, ServeError>,
    pub kernel_solves: u64,
    pub simplex_solves: u64,
    pub warm_hits: u64,
    pub pivots: u64,
}

/// Solves one already-snapped query on `ctx`, counting what the solve
/// cost (kernel vs simplex, warm hits, pivots) via the thread-local
/// counters. Shared by the serial engine and the batch workers.
pub(crate) fn solve_counted(ctx: &mut SolveCtx, snapped: &Query) -> SolvedMiss {
    let kernel_before = kernel_hits_local();
    let lp_before = bcc_lp::stats::local_snapshot();
    let net = snapped.network();
    let outcome = match ctx.solve_best(
        &net,
        &Protocol::ALL,
        Objective::SumRate,
        snapped.bound,
        snapped.floor,
    ) {
        Ok(Some(out)) => Ok(Outcome::Decided(DecisionCore::from_solution(
            &out.sum_rate_solution(),
        ))),
        Ok(None) => Ok(Outcome::Infeasible),
        Err(e) => Err(ServeError::Solver(e)),
    };
    let lp = bcc_lp::stats::local_snapshot().delta_since(&lp_before);
    SolvedMiss {
        outcome,
        kernel_solves: kernel_hits_local().wrapping_sub(kernel_before),
        simplex_solves: lp.solves,
        warm_hits: lp.warm_hits,
        pivots: lp.pivots,
    }
}

/// The cache-oracle solve: what a fresh context computes for `query`
/// under `spec`'s quantization, with no cache involved. The
/// cache-correctness property test compares every cache hit against
/// this.
pub fn cold_solve(
    ctx: &mut SolveCtx,
    query: &Query,
    spec: &QuantSpec,
) -> Result<Option<DecisionCore>, ServeError> {
    let (_, snapped) = spec.snap_query(query);
    let net = snapped.network();
    match ctx.solve_best(
        &net,
        &Protocol::ALL,
        Objective::SumRate,
        snapped.bound,
        snapped.floor,
    ) {
        Ok(Some(out)) => Ok(Some(DecisionCore::from_solution(&out.sum_rate_solution()))),
        Ok(None) => Ok(None),
        Err(e) => Err(ServeError::Solver(e)),
    }
}

/// A serial protocol-selection engine with a quantized decision cache.
#[derive(Debug)]
pub struct Engine {
    ctx: SolveCtx,
    cache: DecisionCache,
    spec: QuantSpec,
}

impl Engine {
    /// Creates an engine per `config` (the queue/thread fields are
    /// ignored here; they configure the batched [`Server`](crate::Server)).
    pub fn new(config: &ServeConfig) -> Self {
        Engine {
            ctx: SolveCtx::new(),
            cache: DecisionCache::with_capacity(config.cache_capacity),
            spec: config.quant,
        }
    }

    /// The engine's quantization spec.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The decision cache (for occupancy/eviction introspection).
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    /// Mutable cache access for the batched server's probe/commit phases.
    pub(crate) fn cache_mut(&mut self) -> &mut DecisionCache {
        &mut self.cache
    }

    /// Answers one query.
    ///
    /// The query is snapped to its quantized key; a cache hit returns the
    /// stored decision bit-for-bit (tagged [`ServedFrom::Cache`]), a miss
    /// solves the snapped query on the engine's context, caches the
    /// outcome — including proven infeasibility — and tags the answer
    /// [`ServedFrom::Kernel`]. Solver *errors* are returned but never
    /// cached.
    pub fn serve(&mut self, query: &Query) -> Result<Decision, ServeError> {
        let (key, snapped) = self.spec.snap_query(query);
        let mut delta = ServeStats {
            queries: 1,
            ..ServeStats::zero()
        };
        let result = match self.cache.get(&key) {
            Some(outcome) => {
                delta.cache_hits = 1;
                match outcome {
                    Outcome::Decided(core) => Ok(core.tagged(ServedFrom::Cache)),
                    Outcome::Infeasible => Err(ServeError::Infeasible),
                }
            }
            None => {
                delta.cache_misses = 1;
                let evictions_before = self.cache.evictions();
                let solved = solve_counted(&mut self.ctx, &snapped);
                delta.kernel_solves = solved.kernel_solves;
                delta.simplex_solves = solved.simplex_solves;
                let result = match solved.outcome {
                    Ok(outcome) => {
                        self.cache.insert(key, outcome);
                        match outcome {
                            Outcome::Decided(core) => Ok(core.tagged(ServedFrom::Kernel)),
                            Outcome::Infeasible => Err(ServeError::Infeasible),
                        }
                    }
                    Err(e) => Err(e),
                };
                delta.evictions = self.cache.evictions().wrapping_sub(evictions_before);
                result
            }
        };
        crate::stats::record(&delta);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::{ChannelState, PowerSplit};

    fn q(gab: f64) -> Query {
        Query::new(
            ChannelState::new(gab, 1.0, 3.16),
            PowerSplit::symmetric(10.0),
        )
    }

    #[test]
    fn second_serve_of_the_same_state_hits_and_is_bit_identical() {
        let mut engine = Engine::new(&ServeConfig::default());
        let d1 = engine.serve(&q(0.2)).unwrap();
        let d2 = engine.serve(&q(0.2)).unwrap();
        assert_eq!(d1.served_from, ServedFrom::Kernel);
        assert_eq!(d2.served_from, ServedFrom::Cache);
        assert_eq!(d1.sum_rate.to_bits(), d2.sum_rate.to_bits());
        assert_eq!(d1.ra.to_bits(), d2.ra.to_bits());
        assert_eq!(d1.rb.to_bits(), d2.rb.to_bits());
        assert_eq!(d1.protocol, d2.protocol);
        assert_eq!(d1.durations, d2.durations);
    }

    #[test]
    fn nearby_states_share_a_cache_cell_and_thus_an_answer() {
        let mut engine = Engine::new(&ServeConfig::default());
        let d1 = engine.serve(&q(0.2)).unwrap();
        // 0.01 dB away on a 0.25 dB grid: same cell, served from cache.
        let d2 = engine.serve(&q(0.2 * 1.0023)).unwrap();
        assert_eq!(d2.served_from, ServedFrom::Cache);
        assert_eq!(d1.sum_rate.to_bits(), d2.sum_rate.to_bits());
    }

    #[test]
    fn strict_mode_never_shares_across_distinct_bits() {
        let config = ServeConfig::default().quant(QuantSpec::strict());
        let mut engine = Engine::new(&config);
        engine.serve(&q(0.2)).unwrap();
        let d2 = engine.serve(&q(0.2 * 1.0023)).unwrap();
        assert_eq!(d2.served_from, ServedFrom::Kernel);
        let d3 = engine.serve(&q(0.2)).unwrap();
        assert_eq!(d3.served_from, ServedFrom::Cache);
    }

    #[test]
    fn infeasible_floors_are_cached_as_infeasible() {
        let mut engine = Engine::new(&ServeConfig::default());
        let hopeless = q(0.2).with_floor(50.0, 50.0);
        assert_eq!(engine.serve(&hopeless), Err(ServeError::Infeasible));
        let misses_before = engine.cache().len();
        assert_eq!(engine.serve(&hopeless), Err(ServeError::Infeasible));
        assert_eq!(
            engine.cache().len(),
            misses_before,
            "the second infeasible serve must not re-solve or re-insert"
        );
    }

    #[test]
    fn serve_moves_the_stats_counters() {
        let mut engine = Engine::new(&ServeConfig::default());
        let ((), delta) = crate::stats::scoped(|| {
            engine.serve(&q(0.3)).unwrap();
            engine.serve(&q(0.3)).unwrap();
            engine.serve(&q(0.7)).unwrap();
        });
        assert_eq!(delta.queries, 3);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(delta.cache_misses, 2);
        // A floor-free inner-bound miss sweeps all four protocols:
        // closed-form kernel where available, LP for the rest.
        assert!(delta.kernel_solves > 0);
    }
}
