//! A protocol-selection query engine over the bidirectional coded
//! cooperation bounds — the serving layer of the workspace.
//!
//! The analysis crates answer "what is the best protocol at operating
//! point X?" by solving X from scratch. A control plane asks that
//! question continuously, for streams of channel-state reports that are
//! *near-identical* far more often than they are new. This crate turns
//! the zero-allocation solve kernel ([`bcc_core::SolveCtx`]) into a
//! service shaped for that workload:
//!
//! * **Typed queries and decisions** ([`Query`], [`Decision`]): channel
//!   state + power split (+ optional QoS rate floor, bound choice) in,
//!   winning [`Protocol`](bcc_core::Protocol) + achieved rates + phase
//!   schedule + [`ServedFrom`] provenance out.
//! * **A quantized-state cache** ([`QuantSpec`], [`DecisionCache`]):
//!   gains snap to a configurable dB grid, so near-identical states
//!   share one cached decision. Hits are **bit-identical** to the solve
//!   that populated them — the cache trades query precision (bounded by
//!   half a grid step per link), never answer precision. A
//!   [`strict`](QuantSpec::strict) mode bypasses quantization entirely.
//! * **Batched admission with backpressure** ([`Server`]): a bounded
//!   submission queue drained in parallel over `bcc_num::par`, with
//!   within-batch miss deduplication and [`Rejected`] pushback when the
//!   queue is full. Drained decision streams are bit-identical at any
//!   worker count.
//! * **Serve statistics** ([`stats`]): relaxed-atomic process counters
//!   (queries, hits, misses, evictions, rejects, kernel vs simplex
//!   solves) with exact thread-local deltas, in the style of
//!   [`bcc_lp::stats`].
//! * **Deterministic load generation** ([`LoadSpec`]): reproducible
//!   repeated / hot-set / fresh query streams for closed-loop benches
//!   and replay tests.
//! * **Fault injection & graceful degradation**: an armed
//!   [`bcc_num::faults::FaultPlan`] ([`ServeConfig::faults`]) injects
//!   deterministic solver faults, cache corruption/evictions and worker
//!   panics; the engine validates queries up front
//!   ([`ServeError::InvalidQuery`]), isolates panics per item, retries
//!   once, and falls back to a conservative closed-form
//!   direct-transmission answer ([`ServedFrom::Degraded`]) — always
//!   feasible, provably ≤ the true optimum, never cached — when the full
//!   solve cannot complete (also on [`ServeConfig::solve_budget`]
//!   exhaustion). Under overload, [`Priority::High`] submissions may
//!   shed the newest queued normal query instead of being rejected.
//!   Fault-free runs are bit-identical to a build without the hooks, and
//!   seeded chaos schedules replay bit-identically at any thread count
//!   or batch size.
//!
//! # Example
//!
//! ```
//! use bcc_channel::{ChannelState, PowerSplit};
//! use bcc_serve::{Engine, Query, ServeConfig, ServedFrom};
//!
//! let mut engine = Engine::new(&ServeConfig::default());
//! let q = Query::new(ChannelState::new(0.2, 1.0, 3.16), PowerSplit::symmetric(10.0));
//! let first = engine.serve(&q).unwrap();
//! assert_eq!(first.served_from, ServedFrom::Kernel);
//! // A report 0.01 dB away lands in the same quantization cell:
//! let nearby = Query::new(ChannelState::new(0.2004, 1.0, 3.16), PowerSplit::symmetric(10.0));
//! let second = engine.serve(&nearby).unwrap();
//! assert_eq!(second.served_from, ServedFrom::Cache);
//! assert_eq!(first.sum_rate.to_bits(), second.sum_rate.to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod loadgen;
pub mod quant;
pub mod query;
pub mod server;
pub mod stats;

pub use cache::{DecisionCache, Outcome};
pub use engine::{cold_solve, Engine, ServeConfig};
pub use loadgen::{LoadSpec, StreamKind};
pub use quant::{QuantKey, QuantSpec};
pub use query::{
    Decision, DecisionCore, DegradeReason, Priority, Query, Rejected, ServeError, ServedFrom,
};
pub use server::{BatchStats, Server};
pub use stats::ServeStats;
