//! Deterministic query streams for closed-loop load generation.
//!
//! A [`LoadSpec`] describes a reproducible stream of queries around a
//! base operating point: per-query Rayleigh fades are drawn from
//! decorrelated [`trial_stream`]s keyed by the query index (the
//! workspace-wide `mix_seed`/`trial_stream` discipline), so query `k` of
//! stream `seed` is the same on every run, machine, and thread count —
//! the property the replay and bench gates are built on.
//!
//! Three stream shapes cover the cache's operating envelope:
//!
//! * [`StreamKind::Repeated`] — every query is the base point: the
//!   all-hit regime that measures pure cache latency.
//! * [`StreamKind::HotSet`] — queries draw uniformly from a fixed pool
//!   of faded states: the steady-state regime with a tunable hit rate
//!   (pool size vs cache capacity).
//! * [`StreamKind::Fresh`] — every query is an independent fade draw:
//!   the all-miss regime that measures pure solve throughput.

use crate::query::Query;
use bcc_channel::fading::FadingModel;
use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::scenario::{mix_seed, trial_stream};
use rand::Rng;

/// Decorrelates the hot-set pool member streams from the per-query
/// selector stream (both are derived from the same user seed).
const POOL_SALT: u64 = 0x9E37_79B9_0BCC_5E4E;

/// The shape of a generated query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Every query is the base operating point (all-hit regime).
    Repeated,
    /// Queries draw uniformly from a pool of `pool` faded states.
    HotSet {
        /// Number of distinct states in the hot set.
        pool: usize,
    },
    /// Every query is an independent fade draw (all-miss regime).
    Fresh,
}

/// A deterministic query-stream generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Stream shape.
    pub kind: StreamKind,
    /// Root seed; the whole stream is a pure function of `(spec, k)`.
    pub seed: u64,
    /// Mean channel gains the fades multiply.
    pub state: ChannelState,
    /// Per-node powers attached to every query.
    pub powers: PowerSplit,
    /// When `Some((n, (ra, rb)))`, every `n`-th query carries the QoS
    /// floor `(ra, rb)` — exercising the simplex path amid kernel
    /// traffic.
    pub floor_every: Option<(u64, (f64, f64))>,
    /// When `Some(n)`, every `n`-th query carries a malformed (NaN) QoS
    /// floor — exercising [`Query::validate`] rejection amid healthy
    /// traffic. Applied after `floor_every`, so an index hit by both is
    /// invalid.
    pub invalid_every: Option<u64>,
}

impl LoadSpec {
    /// A stream around `state`/`powers` with no QoS floors.
    pub fn new(kind: StreamKind, seed: u64, state: ChannelState, powers: PowerSplit) -> Self {
        LoadSpec {
            kind,
            seed,
            state,
            powers,
            floor_every: None,
            invalid_every: None,
        }
    }

    /// Attaches the floor `(ra, rb)` to every `n`-th query (`n ≥ 1`).
    pub fn floor_every(mut self, n: u64, ra: f64, rb: f64) -> Self {
        assert!(n >= 1, "floor period must be at least 1");
        self.floor_every = Some((n, (ra, rb)));
        self
    }

    /// Makes every `n`-th query malformed (a NaN floor component), so
    /// the stream exercises up-front validation (`n ≥ 1`). The typed
    /// constructors reject bad gains and powers at construction, so a
    /// broken floor is the one invalid shape a caller can build.
    pub fn invalid_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "invalid period must be at least 1");
        self.invalid_every = Some(n);
        self
    }

    /// The faded state of hot-set pool member `j`.
    fn pool_state(&self, j: u64) -> ChannelState {
        let mut rng = trial_stream(mix_seed(self.seed ^ POOL_SALT, j), 0);
        self.fade(&mut rng)
    }

    /// Draws one faded state from `rng` (three independent Rayleigh
    /// power fades on the mean gains).
    fn fade<R: Rng>(&self, rng: &mut R) -> ChannelState {
        let f = FadingModel::Rayleigh;
        ChannelState::new(
            self.state.gab() * f.sample_power(rng),
            self.state.gar() * f.sample_power(rng),
            self.state.gbr() * f.sample_power(rng),
        )
    }

    /// Query `k` of the stream — a pure function of `(self, k)`.
    pub fn query(&self, k: u64) -> Query {
        let state = match self.kind {
            StreamKind::Repeated => self.state,
            StreamKind::HotSet { pool } => {
                assert!(pool >= 1, "hot set needs at least one member");
                let j = trial_stream(self.seed, k).gen_range(0..pool as u64);
                self.pool_state(j)
            }
            StreamKind::Fresh => self.fade(&mut trial_stream(self.seed, k)),
        };
        let mut q = Query::new(state, self.powers);
        if let Some((n, (ra, rb))) = self.floor_every {
            if k % n == n - 1 {
                q = q.with_floor(ra, rb);
            }
        }
        if let Some(n) = self.invalid_every {
            if k % n == n - 1 {
                q = q.with_floor(f64::NAN, 0.0);
            }
        }
        q
    }

    /// The first `n` queries of the stream.
    pub fn queries(&self, n: u64) -> Vec<Query> {
        (0..n).map(|k| self.query(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: StreamKind) -> LoadSpec {
        LoadSpec::new(
            kind,
            0xBCC0,
            ChannelState::new(0.2, 1.0, 3.16),
            PowerSplit::symmetric(10.0),
        )
    }

    #[test]
    fn streams_are_pure_functions_of_spec_and_index() {
        for kind in [
            StreamKind::Repeated,
            StreamKind::HotSet { pool: 8 },
            StreamKind::Fresh,
        ] {
            let s = spec(kind);
            for k in [0, 1, 17, 1000] {
                assert_eq!(s.query(k), s.query(k), "query {k} must be reproducible");
            }
        }
    }

    #[test]
    fn repeated_streams_repeat_and_fresh_streams_do_not() {
        let rep = spec(StreamKind::Repeated);
        assert_eq!(rep.query(0), rep.query(999));
        let fresh = spec(StreamKind::Fresh);
        assert_ne!(fresh.query(0), fresh.query(1));
    }

    #[test]
    fn hot_set_streams_draw_from_exactly_the_pool() {
        let s = spec(StreamKind::HotSet { pool: 4 });
        let pool: Vec<ChannelState> = (0..4).map(|j| s.pool_state(j)).collect();
        let mut seen = [false; 4];
        for k in 0..200 {
            let q = s.query(k);
            let j = pool
                .iter()
                .position(|p| *p == q.state)
                .expect("every query is a pool member");
            seen[j] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws cover a 4-state pool");
    }

    #[test]
    fn floors_appear_exactly_every_nth_query() {
        let s = spec(StreamKind::Repeated).floor_every(5, 0.05, 0.06);
        for k in 0..20 {
            let q = s.query(k);
            if k % 5 == 4 {
                assert_eq!(q.floor, Some((0.05, 0.06)));
            } else {
                assert_eq!(q.floor, None);
            }
        }
    }

    #[test]
    fn invalid_every_injects_malformed_floors_on_schedule() {
        let s = spec(StreamKind::Repeated).invalid_every(7);
        for k in 0..21 {
            let q = s.query(k);
            if k % 7 == 6 {
                assert!(q.validate().is_err(), "query {k} should be malformed");
            } else {
                assert!(q.validate().is_ok(), "query {k} should be healthy");
            }
        }
    }

    #[test]
    fn different_seeds_decorrelate_fresh_streams() {
        let a = spec(StreamKind::Fresh);
        let b = LoadSpec { seed: 0xBCC1, ..a };
        assert_ne!(a.query(0), b.query(0));
    }
}
