//! Channel-state quantization: the dB grid that turns "near-identical"
//! queries into *identical* cache keys.
//!
//! Power gains and per-node powers span orders of magnitude, so the
//! natural snapping grid is logarithmic: a gain `g > 0` maps to the
//! integer index `round(10·log10(g) / step_db)` and back to the grid
//! value `10^(index·step_db/10)`. Two queries whose gains and powers land
//! on the same grid indices (and whose floor/bound match **exactly** —
//! QoS floors are contractual, never rounded) share a [`QuantKey`] and
//! therefore one cached decision.
//!
//! # Exactness contract
//!
//! Quantization happens **before** the solve: a cache miss solves the
//! *snapped* query, and the cached decision is exactly that solve's
//! output. A later hit on the same key returns those bytes untouched, so
//! hits are bit-identical to the miss that populated them — the cache
//! trades *query* precision (bounded by `step_db/2` per link) for speed,
//! never *answer* precision at the quantized point. [`QuantSpec::strict`]
//! removes the query error too: keys are the exact f64 bit patterns, so
//! only bitwise-identical states share an entry.

use crate::query::Query;
use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::protocol::Bound;

/// Grid index of a zero gain/power (no finite dB value exists; zero is a
/// grid point of its own).
const ZERO_INDEX: i64 = i64::MIN;

/// How queries are snapped to cache keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    step_db: f64,
    strict: bool,
}

impl QuantSpec {
    /// Snap gains and powers to a dB grid of the given step (e.g. `0.25`
    /// dB). Smaller steps mean finer answers and fewer cache hits.
    ///
    /// # Panics
    ///
    /// Panics if `step_db` is not finite and positive.
    pub fn db_grid(step_db: f64) -> Self {
        assert!(
            step_db.is_finite() && step_db > 0.0,
            "quantization step must be finite and positive, got {step_db}"
        );
        QuantSpec {
            step_db,
            strict: false,
        }
    }

    /// Bypass quantization entirely: the key is the exact bit pattern of
    /// every gain and power, so only literal repeats hit the cache and
    /// every answer is computed at the caller's exact operating point.
    pub fn strict() -> Self {
        QuantSpec {
            step_db: 0.0,
            strict: true,
        }
    }

    /// `true` if this spec bypasses quantization.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// The grid step in dB, or `None` in strict mode.
    pub fn step_db(&self) -> Option<f64> {
        if self.strict {
            None
        } else {
            Some(self.step_db)
        }
    }

    /// The grid index of one linear gain/power.
    fn index(&self, v: f64) -> i64 {
        if self.strict {
            return v.to_bits() as i64;
        }
        if v <= 0.0 {
            return ZERO_INDEX;
        }
        (10.0 * v.log10() / self.step_db).round() as i64
    }

    /// The grid value of one linear gain/power (identity in strict mode).
    fn snap(&self, v: f64) -> f64 {
        if self.strict {
            return v;
        }
        if v <= 0.0 {
            return 0.0;
        }
        10f64.powf(self.index(v) as f64 * self.step_db / 10.0)
    }

    /// Snaps a query to its cache key and the quantized query the engine
    /// actually solves. Gains and powers snap to the grid; the QoS floor
    /// and bound choice are part of the key **exactly** (bit patterns).
    pub fn snap_query(&self, q: &Query) -> (QuantKey, Query) {
        let s = q.state;
        let p = q.powers;
        let (fa, fb, has_floor) = match q.floor {
            Some((a, b)) => (a.to_bits(), b.to_bits(), true),
            None => (0, 0, false),
        };
        let key = QuantKey {
            words: [
                self.index(s.gab()) as u64,
                self.index(s.gar()) as u64,
                self.index(s.gbr()) as u64,
                self.index(p.p_a()) as u64,
                self.index(p.p_b()) as u64,
                self.index(p.p_r()) as u64,
                fa,
                fb,
                u64::from(has_floor) | (u64::from(q.bound == Bound::Outer) << 1),
            ],
        };
        // Priority is deliberately not part of the key: it steers
        // admission under overload, never the answer, so queries that
        // differ only in priority share one cached decision.
        let snapped = Query {
            state: ChannelState::new(self.snap(s.gab()), self.snap(s.gar()), self.snap(s.gbr())),
            powers: PowerSplit::new(self.snap(p.p_a()), self.snap(p.p_b()), self.snap(p.p_r())),
            floor: q.floor,
            bound: q.bound,
            priority: q.priority,
        };
        (key, snapped)
    }
}

impl Default for QuantSpec {
    /// A 0.25 dB grid — fine enough that the snapped operating point is
    /// within 3% (linear) of the requested one on every link.
    fn default() -> Self {
        QuantSpec::db_grid(0.25)
    }
}

/// A quantized query identity: six snapped gain/power grid indices plus
/// the exact floor bits and bound tag. Everything the solve depends on is
/// in here — two queries with equal keys produce bitwise-equal decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantKey {
    words: [u64; 9],
}

impl QuantKey {
    /// A deterministic 64-bit hash of the key (SplitMix64 fold) — the
    /// cache's probe anchor. Hand-rolled so the table layout is identical
    /// on every run and platform (no per-process hasher seeds).
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &w in &self.words {
            let mut z = h ^ w.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(gab: f64, gar: f64, gbr: f64, p: f64) -> Query {
        Query::new(ChannelState::new(gab, gar, gbr), PowerSplit::symmetric(p))
    }

    #[test]
    fn near_identical_states_share_a_key() {
        let spec = QuantSpec::db_grid(0.5);
        let (k1, s1) = spec.snap_query(&q(1.0, 2.0, 3.0, 10.0));
        // 0.1 dB perturbation on a 0.5 dB grid: same cell.
        let (k2, s2) = spec.snap_query(&q(1.0116, 2.0, 3.0, 10.0));
        assert_eq!(k1, k2);
        assert_eq!(s1, s2, "same key must mean same snapped query");
        // 1 dB apart: different cell.
        let (k3, _) = spec.snap_query(&q(1.2589, 2.0, 3.0, 10.0));
        assert_ne!(k1, k3);
    }

    #[test]
    fn snapped_values_lie_on_the_grid_and_near_the_input() {
        let spec = QuantSpec::db_grid(0.25);
        for g in [0.001, 0.5, 1.0, 3.1623, 999.0] {
            let (_, s) = spec.snap_query(&q(g, 1.0, 1.0, 1.0));
            let snapped = s.state.gab();
            let db_err = 10.0 * (snapped / g).log10();
            assert!(
                db_err.abs() <= 0.125 + 1e-9,
                "{g} snapped to {snapped}: {db_err} dB off"
            );
            // Idempotent: snapping a snapped value is a fixed point.
            let (_, s2) = spec.snap_query(&Query::new(s.state, s.powers));
            assert_eq!(s2.state.gab().to_bits(), snapped.to_bits());
        }
    }

    #[test]
    fn zero_gain_is_its_own_grid_point() {
        let spec = QuantSpec::db_grid(0.25);
        let (k0, s0) = spec.snap_query(&q(0.0, 1.0, 1.0, 1.0));
        assert_eq!(s0.state.gab(), 0.0);
        let (k_tiny, _) = spec.snap_query(&q(1e-300, 1.0, 1.0, 1.0));
        assert_ne!(k0, k_tiny, "a tiny positive gain is not zero");
    }

    #[test]
    fn strict_mode_keys_on_exact_bits() {
        let spec = QuantSpec::strict();
        assert!(spec.is_strict());
        assert_eq!(spec.step_db(), None);
        let (k1, s1) = spec.snap_query(&q(1.0, 2.0, 3.0, 10.0));
        let (k2, _) = spec.snap_query(&q(1.0, 2.0, 3.0, 10.0));
        assert_eq!(k1, k2, "literal repeats still share a key");
        let (k3, _) = spec.snap_query(&q(1.0 + 1e-12, 2.0, 3.0, 10.0));
        assert_ne!(k1, k3, "any bit difference separates keys");
        assert_eq!(s1, q(1.0, 2.0, 3.0, 10.0), "strict snapping is identity");
    }

    #[test]
    fn floor_and_bound_are_exact_key_components() {
        let spec = QuantSpec::default();
        let base = q(1.0, 2.0, 3.0, 10.0);
        let (k, _) = spec.snap_query(&base);
        let (kf, _) = spec.snap_query(&base.with_floor(0.1, 0.1));
        let (kf2, _) = spec.snap_query(&base.with_floor(0.1, 0.100000001));
        let (kb, _) = spec.snap_query(&base.with_bound(Bound::Outer));
        assert_ne!(k, kf);
        assert_ne!(kf, kf2, "floors are never rounded");
        assert_ne!(k, kb);
    }

    #[test]
    #[should_panic(expected = "quantization step")]
    fn db_grid_rejects_nan_step() {
        let _ = QuantSpec::db_grid(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantization step")]
    fn db_grid_rejects_infinite_step() {
        let _ = QuantSpec::db_grid(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "quantization step")]
    fn db_grid_rejects_non_positive_step() {
        let _ = QuantSpec::db_grid(0.0);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let spec = QuantSpec::default();
        let (k, _) = spec.snap_query(&q(1.0, 2.0, 3.0, 10.0));
        assert_eq!(k.hash64(), k.hash64());
        // Neighbouring cells should not collide in the low bits (the
        // cache masks these); check a small neighbourhood.
        let mut low = std::collections::HashSet::new();
        for i in 0..16 {
            let g = 10f64.powf(i as f64 * 0.025); // one grid step apart
            let (ki, _) = spec.snap_query(&q(g, 2.0, 3.0, 10.0));
            low.insert(ki.hash64() & 0xFFF);
        }
        assert!(low.len() >= 14, "low bits collide too much: {}", low.len());
    }
}
