//! The typed request/response vocabulary of the serving layer.
//!
//! A [`Query`] is one user's question — "at this channel state, with this
//! per-node power budget (and optionally a QoS rate floor), which protocol
//! should I run and at what rates/schedule?" — and a [`Decision`] is the
//! engine's answer: the winning [`Protocol`], its optimal operating point,
//! and a [`ServedFrom`] provenance tag saying whether the answer was
//! computed fresh through the solve kernel or served from the
//! quantized-state cache.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::constraint::PhaseVec;
use bcc_core::gaussian::{GaussianNetwork, SumRateSolution};
use bcc_core::protocol::{Bound, Protocol};
use bcc_core::CoreError;

/// Admission priority of a [`Query`] under overload.
///
/// When the submission queue is full, a [`High`](Priority::High) query
/// may displace the most recently queued [`Normal`](Priority::Normal)
/// one (which is *shed* — dropped, counted in
/// [`stats::ServeStats::shed`](crate::stats::ServeStats::shed)) instead
/// of being rejected. Priority never changes an answer, only admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Best-effort traffic: rejected outright when the queue is full.
    #[default]
    Normal,
    /// Control-plane traffic: admitted under overload by shedding the
    /// newest queued [`Normal`](Priority::Normal) query, if any.
    High,
}

/// One protocol-selection request.
///
/// ```
/// use bcc_channel::{ChannelState, PowerSplit};
/// use bcc_core::protocol::Bound;
/// use bcc_serve::Query;
///
/// let q = Query::new(ChannelState::new(0.2, 1.0, 3.16), PowerSplit::symmetric(10.0))
///     .with_floor(0.25, 0.25)
///     .with_bound(Bound::Inner);
/// assert_eq!(q.floor, Some((0.25, 0.25)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// The channel state (linear power gains) the decision is for.
    pub state: ChannelState,
    /// The per-node power budget/split.
    pub powers: PowerSplit,
    /// Optional QoS rate floor `(R_a ≥ ra_min, R_b ≥ rb_min)`; protocols
    /// that cannot meet it are excluded from selection.
    pub floor: Option<(f64, f64)>,
    /// Which bound family to select over (achievable inner by default).
    pub bound: Bound,
    /// Admission priority under overload (answers never depend on it).
    pub priority: Priority,
}

impl Query {
    /// Creates a query with no QoS floor over the achievable (inner)
    /// bounds — the common case.
    pub fn new(state: ChannelState, powers: PowerSplit) -> Self {
        Query {
            state,
            powers,
            floor: None,
            bound: Bound::Inner,
            priority: Priority::Normal,
        }
    }

    /// A query at an existing network's operating point.
    pub fn for_network(net: &GaussianNetwork) -> Self {
        Query::new(net.state(), net.powers())
    }

    /// Attaches a QoS rate floor.
    pub fn with_floor(mut self, ra_min: f64, rb_min: f64) -> Self {
        self.floor = Some((ra_min, rb_min));
        self
    }

    /// Selects over `bound` instead of the achievable region.
    pub fn with_bound(mut self, bound: Bound) -> Self {
        self.bound = bound;
        self
    }

    /// Sets the admission priority (see [`Priority`]).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Checks the query for values the solve kernels cannot answer
    /// meaningfully: non-finite or negative gains, powers or floor
    /// components. Serving layers call this before snapping, so a
    /// malformed query is answered with
    /// [`ServeError::InvalidQuery`] instead of poisoning a solve (or a
    /// cached key) downstream.
    ///
    /// The typed constructors of [`ChannelState`] and [`PowerSplit`]
    /// already reject bad gains and powers at construction; the QoS
    /// floor is the surface a caller can actually get wrong, and the
    /// gain/power checks here are defence in depth.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidQuery`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
        let gains = [self.state.gab(), self.state.gar(), self.state.gbr()];
        if !gains.into_iter().all(finite_nonneg) {
            return Err(ServeError::InvalidQuery {
                reason: "channel gain must be finite and non-negative",
            });
        }
        let powers = [self.powers.p_a(), self.powers.p_b(), self.powers.p_r()];
        if !powers.into_iter().all(finite_nonneg) {
            return Err(ServeError::InvalidQuery {
                reason: "transmit power must be finite and non-negative",
            });
        }
        if let Some((ra, rb)) = self.floor {
            if !finite_nonneg(ra) || !finite_nonneg(rb) {
                return Err(ServeError::InvalidQuery {
                    reason: "QoS floor must be finite and non-negative",
                });
            }
        }
        Ok(())
    }

    /// The Gaussian network this query describes.
    pub fn network(&self) -> GaussianNetwork {
        GaussianNetwork::with_powers(self.powers, self.state)
    }
}

/// Why the engine fell back to a conservative degraded answer instead of
/// the full protocol-selection solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The full solve exceeded the configured per-query simplex budget
    /// (see [`ServeConfig::solve_budget`](crate::ServeConfig::solve_budget)),
    /// or ran into a solver iteration limit — organic or injected.
    Budget,
    /// The solve failed with an injected fault (chaos testing).
    Fault,
    /// The solve panicked (caught and isolated); the retry also failed.
    Panic,
}

/// Where a [`Decision`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Computed fresh through the [`SolveCtx`](bcc_core::SolveCtx) kernel
    /// (closed form or warm-started simplex) at the quantized key.
    Kernel,
    /// Served from the quantized-state cache — **bit-identical** to the
    /// kernel decision computed at the same quantized key (the cache
    /// stores decisions, never re-derives them).
    Cache,
    /// A conservative fallback answer: the full per-protocol selection
    /// could not complete (budget exhaustion, injected fault, caught
    /// panic), so the engine served the closed-form direct-transmission
    /// operating point instead. Degraded answers are always feasible,
    /// provably ≤ the true optimum (DT is one of the candidates the full
    /// solve maximises over), and **never cached** — the next query at
    /// the key retries the full solve.
    Degraded {
        /// What forced the fallback.
        reason: DegradeReason,
    },
}

/// The payload of a decision, without provenance — what the cache stores
/// and what two serves of the same quantized key share bitwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionCore {
    /// The winning protocol (ties resolve to the earliest entry of
    /// [`Protocol::ALL`], so selection is deterministic).
    pub protocol: Protocol,
    /// Its optimal sum rate at the quantized operating point.
    pub sum_rate: f64,
    /// Rate of `w_a` at the optimum.
    pub ra: f64,
    /// Rate of `w_b` at the optimum.
    pub rb: f64,
    /// Optimal phase schedule.
    pub durations: PhaseVec,
}

impl DecisionCore {
    /// Builds the core from a winning sum-rate solution.
    pub fn from_solution(sol: &SumRateSolution) -> Self {
        DecisionCore {
            protocol: sol.protocol,
            sum_rate: sol.sum_rate,
            ra: sol.ra,
            rb: sol.rb,
            durations: sol.durations,
        }
    }

    /// Attaches provenance, producing the user-facing [`Decision`].
    pub fn tagged(self, served_from: ServedFrom) -> Decision {
        Decision {
            protocol: self.protocol,
            sum_rate: self.sum_rate,
            ra: self.ra,
            rb: self.rb,
            durations: self.durations,
            served_from,
        }
    }
}

/// The engine's answer to a [`Query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The winning protocol.
    pub protocol: Protocol,
    /// Its optimal sum rate at the quantized operating point.
    pub sum_rate: f64,
    /// Rate of `w_a` at the optimum.
    pub ra: f64,
    /// Rate of `w_b` at the optimum.
    pub rb: f64,
    /// Optimal phase schedule of the winner.
    pub durations: PhaseVec,
    /// Whether this answer was solved fresh or served from the cache.
    pub served_from: ServedFrom,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The QoS floor is unachievable by **every** protocol at the
    /// (quantized) operating point. Infeasibility is a property of the
    /// quantized key and is cached like any other outcome.
    Infeasible,
    /// The query itself is malformed (non-finite or negative gain, power
    /// or floor) and was rejected by [`Query::validate`] before any
    /// solve. Never cached.
    InvalidQuery {
        /// Which field failed validation.
        reason: &'static str,
    },
    /// The full solve could not complete (see [`DegradeReason`]) **and**
    /// the conservative direct-transmission fallback cannot meet the
    /// query's QoS floor, so no honest answer exists: the true outcome
    /// may be a relay-protocol decision or a proven infeasibility, and
    /// claiming either would be wrong. Never cached.
    DegradedUnavailable {
        /// What forced the fallback that then came up empty.
        reason: DegradeReason,
    },
    /// An unexpected solver failure (not an infeasibility).
    Solver(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Infeasible => {
                write!(f, "QoS floor unachievable by every protocol")
            }
            ServeError::InvalidQuery { reason } => {
                write!(f, "invalid query: {reason}")
            }
            ServeError::DegradedUnavailable { reason } => {
                write!(
                    f,
                    "degraded ({reason:?}): conservative fallback cannot meet the QoS floor"
                )
            }
            ServeError::Solver(e) => write!(f, "solver failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Backpressure: the submission queue is full; the query is handed back
/// to the caller untouched (retry after a drain, or shed it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejected(pub Query);

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission queue full; query rejected")
    }
}

impl std::error::Error for Rejected {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let q = Query::new(ChannelState::new(1.0, 2.0, 3.0), PowerSplit::symmetric(5.0));
        assert_eq!(q.bound, Bound::Inner);
        assert_eq!(q.floor, None);
        let q = q.with_floor(0.1, 0.2).with_bound(Bound::Outer);
        assert_eq!(q.floor, Some((0.1, 0.2)));
        assert_eq!(q.bound, Bound::Outer);
        let net = q.network();
        assert_eq!(net.state(), q.state);
        assert_eq!(net.powers(), q.powers);
    }

    #[test]
    fn decision_core_round_trips_through_tagging() {
        let sol = SumRateSolution {
            protocol: Protocol::Mabc,
            sum_rate: 1.5,
            ra: 0.75,
            rb: 0.75,
            durations: PhaseVec::from([0.4, 0.6]),
        };
        let core = DecisionCore::from_solution(&sol);
        let d = core.tagged(ServedFrom::Cache);
        assert_eq!(d.protocol, Protocol::Mabc);
        assert_eq!(d.sum_rate, 1.5);
        assert_eq!(d.served_from, ServedFrom::Cache);
        assert_eq!(d.durations, sol.durations);
    }

    #[test]
    fn validate_accepts_well_formed_queries() {
        let q = Query::new(ChannelState::new(1.0, 2.0, 3.0), PowerSplit::symmetric(5.0));
        assert_eq!(q.validate(), Ok(()));
        assert_eq!(q.with_floor(0.0, 0.25).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_broken_floors() {
        let q = Query::new(ChannelState::new(1.0, 2.0, 3.0), PowerSplit::symmetric(5.0));
        for (ra, rb) in [
            (f64::NAN, 0.1),
            (0.1, f64::INFINITY),
            (-0.25, 0.1),
            (0.1, f64::NEG_INFINITY),
        ] {
            let err = q.with_floor(ra, rb).validate().unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidQuery { reason } if reason.contains("floor")),
                "floor ({ra}, {rb}) produced {err:?}"
            );
        }
    }

    #[test]
    fn priority_defaults_to_normal_and_orders_below_high() {
        let q = Query::new(ChannelState::new(1.0, 2.0, 3.0), PowerSplit::symmetric(5.0));
        assert_eq!(q.priority, Priority::Normal);
        let q = q.with_priority(Priority::High);
        assert_eq!(q.priority, Priority::High);
        assert!(Priority::Normal < Priority::High);
    }
}
