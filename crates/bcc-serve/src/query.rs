//! The typed request/response vocabulary of the serving layer.
//!
//! A [`Query`] is one user's question — "at this channel state, with this
//! per-node power budget (and optionally a QoS rate floor), which protocol
//! should I run and at what rates/schedule?" — and a [`Decision`] is the
//! engine's answer: the winning [`Protocol`], its optimal operating point,
//! and a [`ServedFrom`] provenance tag saying whether the answer was
//! computed fresh through the solve kernel or served from the
//! quantized-state cache.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::constraint::PhaseVec;
use bcc_core::gaussian::{GaussianNetwork, SumRateSolution};
use bcc_core::protocol::{Bound, Protocol};
use bcc_core::CoreError;

/// One protocol-selection request.
///
/// ```
/// use bcc_channel::{ChannelState, PowerSplit};
/// use bcc_core::protocol::Bound;
/// use bcc_serve::Query;
///
/// let q = Query::new(ChannelState::new(0.2, 1.0, 3.16), PowerSplit::symmetric(10.0))
///     .with_floor(0.25, 0.25)
///     .with_bound(Bound::Inner);
/// assert_eq!(q.floor, Some((0.25, 0.25)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// The channel state (linear power gains) the decision is for.
    pub state: ChannelState,
    /// The per-node power budget/split.
    pub powers: PowerSplit,
    /// Optional QoS rate floor `(R_a ≥ ra_min, R_b ≥ rb_min)`; protocols
    /// that cannot meet it are excluded from selection.
    pub floor: Option<(f64, f64)>,
    /// Which bound family to select over (achievable inner by default).
    pub bound: Bound,
}

impl Query {
    /// Creates a query with no QoS floor over the achievable (inner)
    /// bounds — the common case.
    pub fn new(state: ChannelState, powers: PowerSplit) -> Self {
        Query {
            state,
            powers,
            floor: None,
            bound: Bound::Inner,
        }
    }

    /// A query at an existing network's operating point.
    pub fn for_network(net: &GaussianNetwork) -> Self {
        Query::new(net.state(), net.powers())
    }

    /// Attaches a QoS rate floor.
    pub fn with_floor(mut self, ra_min: f64, rb_min: f64) -> Self {
        self.floor = Some((ra_min, rb_min));
        self
    }

    /// Selects over `bound` instead of the achievable region.
    pub fn with_bound(mut self, bound: Bound) -> Self {
        self.bound = bound;
        self
    }

    /// The Gaussian network this query describes.
    pub fn network(&self) -> GaussianNetwork {
        GaussianNetwork::with_powers(self.powers, self.state)
    }
}

/// Where a [`Decision`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Computed fresh through the [`SolveCtx`](bcc_core::SolveCtx) kernel
    /// (closed form or warm-started simplex) at the quantized key.
    Kernel,
    /// Served from the quantized-state cache — **bit-identical** to the
    /// kernel decision computed at the same quantized key (the cache
    /// stores decisions, never re-derives them).
    Cache,
}

/// The payload of a decision, without provenance — what the cache stores
/// and what two serves of the same quantized key share bitwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionCore {
    /// The winning protocol (ties resolve to the earliest entry of
    /// [`Protocol::ALL`], so selection is deterministic).
    pub protocol: Protocol,
    /// Its optimal sum rate at the quantized operating point.
    pub sum_rate: f64,
    /// Rate of `w_a` at the optimum.
    pub ra: f64,
    /// Rate of `w_b` at the optimum.
    pub rb: f64,
    /// Optimal phase schedule.
    pub durations: PhaseVec,
}

impl DecisionCore {
    /// Builds the core from a winning sum-rate solution.
    pub fn from_solution(sol: &SumRateSolution) -> Self {
        DecisionCore {
            protocol: sol.protocol,
            sum_rate: sol.sum_rate,
            ra: sol.ra,
            rb: sol.rb,
            durations: sol.durations,
        }
    }

    /// Attaches provenance, producing the user-facing [`Decision`].
    pub fn tagged(self, served_from: ServedFrom) -> Decision {
        Decision {
            protocol: self.protocol,
            sum_rate: self.sum_rate,
            ra: self.ra,
            rb: self.rb,
            durations: self.durations,
            served_from,
        }
    }
}

/// The engine's answer to a [`Query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The winning protocol.
    pub protocol: Protocol,
    /// Its optimal sum rate at the quantized operating point.
    pub sum_rate: f64,
    /// Rate of `w_a` at the optimum.
    pub ra: f64,
    /// Rate of `w_b` at the optimum.
    pub rb: f64,
    /// Optimal phase schedule of the winner.
    pub durations: PhaseVec,
    /// Whether this answer was solved fresh or served from the cache.
    pub served_from: ServedFrom,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The QoS floor is unachievable by **every** protocol at the
    /// (quantized) operating point. Infeasibility is a property of the
    /// quantized key and is cached like any other outcome.
    Infeasible,
    /// An unexpected solver failure (not an infeasibility).
    Solver(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Infeasible => {
                write!(f, "QoS floor unachievable by every protocol")
            }
            ServeError::Solver(e) => write!(f, "solver failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Backpressure: the submission queue is full; the query is handed back
/// to the caller untouched (retry after a drain, or shed it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejected(pub Query);

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission queue full; query rejected")
    }
}

impl std::error::Error for Rejected {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let q = Query::new(ChannelState::new(1.0, 2.0, 3.0), PowerSplit::symmetric(5.0));
        assert_eq!(q.bound, Bound::Inner);
        assert_eq!(q.floor, None);
        let q = q.with_floor(0.1, 0.2).with_bound(Bound::Outer);
        assert_eq!(q.floor, Some((0.1, 0.2)));
        assert_eq!(q.bound, Bound::Outer);
        let net = q.network();
        assert_eq!(net.state(), q.state);
        assert_eq!(net.powers(), q.powers);
    }

    #[test]
    fn decision_core_round_trips_through_tagging() {
        let sol = SumRateSolution {
            protocol: Protocol::Mabc,
            sum_rate: 1.5,
            ra: 0.75,
            rb: 0.75,
            durations: PhaseVec::from([0.4, 0.6]),
        };
        let core = DecisionCore::from_solution(&sol);
        let d = core.tagged(ServedFrom::Cache);
        assert_eq!(d.protocol, Protocol::Mabc);
        assert_eq!(d.sum_rate, 1.5);
        assert_eq!(d.served_from, ServedFrom::Cache);
        assert_eq!(d.durations, sol.durations);
    }
}
