//! Batched admission: a bounded submission queue drained in parallel.
//!
//! [`Server`] wraps an [`Engine`] with the throughput-oriented front
//! end: callers [`submit`](Server::submit) queries into a bounded queue
//! (a full queue pushes back with [`Rejected`] instead of growing
//! without bound), and [`drain`](Server::drain) answers everything
//! queued in one batch — probing the cache serially, deduplicating
//! misses by quantized key, fanning the unique misses across the
//! deterministic parallel engine of [`bcc_num::par`], and committing the
//! results back into the cache.
//!
//! # Determinism
//!
//! Drained decision streams are **bit-identical at any worker count**:
//! the cache probe and commit phases are serial, miss deduplication is
//! first-seen order, and each solve is a pure function of its snapped
//! query (contexts accept warm starts only under provable uniqueness,
//! so solve results are history-independent). Only the *cost* counters
//! in [`BatchStats`] (`warm_hits`, `pivots`) depend on how misses land
//! on workers, and those are reported as diagnostics, never used in
//! answers.

use crate::cache::Outcome;
use crate::engine::{
    cache_fates, solve_counted, solve_guarded, Engine, GuardedMiss, ServeConfig, SolvedMiss,
};
use crate::quant::QuantKey;
use crate::query::{Decision, DecisionCore, Priority, Query, Rejected, ServeError, ServedFrom};
use crate::stats::ServeStats;
use bcc_core::batch::{PointBlock, DEFAULT_BLOCK};
use bcc_core::protocol::Protocol;
use bcc_core::{SolveCtx, SolveOutcome, SolveRequest};
use bcc_num::par::{par_map_indexed_with, par_map_range};
use std::collections::HashMap;

/// What one drained batch cost — the serving-path counterpart of
/// [`bcc_lp::stats::LpStats`], exposed per batch so bench gates can
/// assert on kernel/warm behaviour of the serving path itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Queries answered by the drain.
    pub queries: u64,
    /// Answers served from the cache, including within-batch duplicates
    /// of one solved miss.
    pub cache_hits: u64,
    /// Unique quantized keys solved fresh.
    pub solved: u64,
    /// Answers that reported QoS infeasibility.
    pub infeasible: u64,
    /// Closed-form kernel solves across the batch's workers.
    pub kernel_solves: u64,
    /// Simplex LP solves across the batch's workers.
    pub simplex_solves: u64,
    /// Warm-started simplex solves (scheduling-dependent: which worker
    /// solves which miss varies with the thread count, so this is a
    /// diagnostic, not a deterministic quantity).
    pub warm_hits: u64,
    /// Simplex pivots (scheduling-dependent, like `warm_hits`).
    pub pivots: u64,
    /// Answers served from the conservative degraded fallback (counted
    /// per answered query, like `cache_hits`).
    pub degraded: u64,
    /// Queries refused by [`Query::validate`] before any solve.
    pub validated_rejects: u64,
}

/// How one submitted query will be answered, planned during the serial
/// cache-probe pass.
enum Plan {
    /// Already cached: answer directly.
    Hit(Outcome),
    /// Miss `miss_idx` in the deduplicated solve list; `first` marks the
    /// batch's first occurrence of the key (tagged `Kernel`; later
    /// duplicates are cache hits on the shared solve).
    Solve { miss_idx: usize, first: bool },
    /// Refused by [`Query::validate`] before snapping; answered with the
    /// stored error, no solve.
    Invalid(ServeError),
}

/// A batched protocol-selection server over a bounded submission queue.
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    queue: Vec<Query>,
    queue_cap: usize,
    threads: Option<usize>,
    last_batch: BatchStats,
}

impl Server {
    /// Creates a server per `config`.
    pub fn new(config: &ServeConfig) -> Self {
        Server {
            engine: Engine::new(config),
            queue: Vec::with_capacity(config.queue_capacity.min(8_192)),
            queue_cap: config.queue_capacity,
            threads: config.threads,
            last_batch: BatchStats::default(),
        }
    }

    /// The underlying serial engine (also the closed-loop serve path).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Answers one query immediately, bypassing the queue — the
    /// closed-loop path. Equivalent to [`Engine::serve`].
    pub fn serve(&mut self, query: &Query) -> Result<Decision, ServeError> {
        self.engine.serve(query)
    }

    /// Queries currently queued for the next drain.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Stats of the most recent [`drain`](Server::drain) (zeros before
    /// the first).
    pub fn last_batch(&self) -> &BatchStats {
        &self.last_batch
    }

    /// Enqueues a query for the next drain, or pushes back with
    /// [`Rejected`] if the queue is at capacity (the query is handed
    /// back untouched; retry after a drain or shed it).
    ///
    /// At capacity, a [`Priority::High`] query displaces the most
    /// recently queued [`Priority::Normal`] one instead of being
    /// rejected: the displaced query is *shed* (dropped, counted in
    /// [`ServeStats::shed`]) and the high-priority query takes its
    /// place. A full queue of high-priority queries still rejects.
    pub fn submit(&mut self, query: Query) -> Result<(), Rejected> {
        if self.queue.len() >= self.queue_cap {
            if query.priority == Priority::High {
                if let Some(pos) = self
                    .queue
                    .iter()
                    .rposition(|q| q.priority == Priority::Normal)
                {
                    self.queue.remove(pos);
                    self.queue.push(query);
                    crate::stats::record(&ServeStats {
                        shed: 1,
                        ..ServeStats::zero()
                    });
                    return Ok(());
                }
            }
            crate::stats::record(&ServeStats {
                rejects: 1,
                ..ServeStats::zero()
            });
            return Err(Rejected(query));
        }
        self.queue.push(query);
        Ok(())
    }

    /// Answers every queued query, in submission order.
    ///
    /// Misses are deduplicated by quantized key and fanned across
    /// workers; see the module docs for the determinism contract. The
    /// batch's cost is recorded in [`last_batch`](Server::last_batch)
    /// and the process-wide [`stats`](crate::stats).
    pub fn drain(&mut self) -> Vec<Result<Decision, ServeError>> {
        let batch: Vec<Query> = std::mem::take(&mut self.queue);
        if batch.is_empty() {
            self.last_batch = BatchStats::default();
            return Vec::new();
        }

        // Phase 1 (serial): validate, probe the cache, dedup misses by
        // key. Under an armed fault plan, evict- or corrupt-fated keys
        // bypass dedup (every occurrence solves fresh, exactly as the
        // serial engine would), and evict-fated keys also bypass the
        // probe — so chaos runs stay invariant under batch size.
        let spec = *self.engine.spec();
        let plan = *self.engine.faults();
        let budget = self.engine.solve_budget();
        let chaos = !plan.is_empty() || budget.is_some();
        let mut validated_rejects = 0u64;
        let mut plans = Vec::with_capacity(batch.len());
        let mut miss_of_key: HashMap<QuantKey, usize> = HashMap::new();
        let mut miss_keys: Vec<QuantKey> = Vec::new();
        let mut miss_queries: Vec<Query> = Vec::new();
        let mut miss_fates: Vec<(bool, bool)> = Vec::new();
        for query in &batch {
            if let Err(e) = query.validate() {
                validated_rejects += 1;
                plans.push(Plan::Invalid(e));
                continue;
            }
            let (key, snapped) = spec.snap_query(query);
            let (evict_fated, corrupt_fated) = cache_fates(&plan, key.hash64());
            if !evict_fated {
                if let Some(outcome) = self.engine.cache_mut().get(&key) {
                    plans.push(Plan::Hit(outcome));
                    continue;
                }
            }
            let bypass_dedup = evict_fated || corrupt_fated;
            if !bypass_dedup {
                if let Some(&miss_idx) = miss_of_key.get(&key) {
                    plans.push(Plan::Solve {
                        miss_idx,
                        first: false,
                    });
                    continue;
                }
            }
            let miss_idx = miss_queries.len();
            if !bypass_dedup {
                miss_of_key.insert(key, miss_idx);
            }
            miss_keys.push(key);
            miss_queries.push(snapped);
            miss_fates.push((evict_fated, corrupt_fated));
            plans.push(Plan::Solve {
                miss_idx,
                first: true,
            });
        }

        // Phase 2 (parallel): solve the unique misses. Results come back
        // in miss order regardless of scheduling. Chaos batches take the
        // guarded scalar path for every miss (its answers are bitwise
        // equal to the lane kernels when no fault fires, by the
        // serial-vs-batched differential invariant); fault-free batches
        // keep the SoA lane kernels.
        let threads = self.threads.unwrap_or_else(bcc_num::par::thread_count);
        let solved: Vec<GuardedMiss> = if chaos {
            let tokens: Vec<u64> = miss_keys.iter().map(QuantKey::hash64).collect();
            par_map_indexed_with(threads, &miss_queries, SolveCtx::new, |ctx, i, snapped| {
                solve_guarded(ctx, snapped, tokens[i], &plan, budget)
            })
        } else {
            solve_misses(threads, &miss_queries)
                .into_iter()
                .map(GuardedMiss::clean)
                .collect()
        };

        // Phase 3 (serial): commit solved outcomes into the cache in miss
        // order. Solver errors and degraded fallback answers are never
        // cached (a degraded answer is not the decision at the key, and
        // caching it would poison every later query there); corrupt-fated
        // keys are admitted with a bad checksum, evict-fated keys are not
        // admitted at all.
        let evictions_before = self.engine.cache().evictions();
        let mut stats = BatchStats {
            queries: batch.len() as u64,
            solved: miss_queries.len() as u64,
            validated_rejects,
            ..BatchStats::default()
        };
        for ((key, miss), &(evict_fated, corrupt_fated)) in
            miss_keys.iter().zip(&solved).zip(&miss_fates)
        {
            stats.kernel_solves += miss.kernel_solves;
            stats.simplex_solves += miss.simplex_solves;
            stats.warm_hits += miss.warm_hits;
            stats.pivots += miss.pivots;
            if miss.degraded.is_some() || evict_fated {
                continue;
            }
            if let Ok(outcome) = miss.outcome {
                if corrupt_fated {
                    self.engine.cache_mut().insert_corrupted(*key, outcome);
                } else {
                    self.engine.cache_mut().insert(*key, outcome);
                }
            }
        }

        // Phase 4 (serial): assemble answers in submission order. Every
        // occurrence of a degraded miss is tagged `Degraded` — degraded
        // answers are never cached, so a duplicate is *not* a cache hit
        // and must not claim to be one.
        let responses: Vec<Result<Decision, ServeError>> = plans
            .into_iter()
            .map(|plan| {
                let (outcome, from) = match plan {
                    Plan::Hit(outcome) => {
                        stats.cache_hits += 1;
                        (Ok(outcome), ServedFrom::Cache)
                    }
                    Plan::Solve { miss_idx, first } => {
                        let miss = &solved[miss_idx];
                        let from = if let Some(reason) = miss.degraded {
                            stats.degraded += 1;
                            ServedFrom::Degraded { reason }
                        } else if first {
                            ServedFrom::Kernel
                        } else {
                            stats.cache_hits += 1;
                            ServedFrom::Cache
                        };
                        (miss.outcome.clone(), from)
                    }
                    Plan::Invalid(e) => (Err(e), ServedFrom::Kernel),
                };
                match outcome {
                    Ok(Outcome::Decided(core)) => Ok(core.tagged(from)),
                    Ok(Outcome::Infeasible) => {
                        stats.infeasible += 1;
                        Err(ServeError::Infeasible)
                    }
                    Err(e) => Err(e),
                }
            })
            .collect();

        self.last_batch = stats;
        crate::stats::record(&ServeStats {
            queries: stats.queries,
            cache_hits: stats.cache_hits,
            cache_misses: stats.solved,
            evictions: self
                .engine
                .cache()
                .evictions()
                .wrapping_sub(evictions_before),
            rejects: 0,
            kernel_solves: stats.kernel_solves,
            simplex_solves: stats.simplex_solves,
            degraded: stats.degraded,
            shed: 0,
            validated_rejects: stats.validated_rejects,
        });
        responses
    }
}

/// Solves a batch's deduplicated misses, in miss order.
///
/// Inner-bound floor-free misses — the overwhelmingly common shape — are
/// solved through the SoA lane kernels of [`bcc_core::batch`]: the
/// snapped networks are packed into [`PointBlock`]s, each block solved
/// for all four protocols at once, and the per-miss argmax replicates
/// [`SolveCtx::solve_best`] exactly (strict `>`, earliest protocol wins
/// ties), so decisions stay bit-identical to the serial engine. Floored
/// or outer-bound misses keep the per-miss simplex path. Each returned
/// [`SolvedMiss`] carries the same cost accounting as the scalar path
/// (one kernel solve per protocol; zero simplex solves).
fn solve_misses(threads: usize, misses: &[Query]) -> Vec<SolvedMiss> {
    let (mut batchable, mut scalar) = (Vec::new(), Vec::new());
    for (i, q) in misses.iter().enumerate() {
        if SolveRequest::sum_rate(Protocol::Hbc)
            .with_bound(q.bound)
            .with_floor(q.floor)
            .is_batchable()
        {
            batchable.push(i);
        } else {
            scalar.push(i);
        }
    }

    let mut solved: Vec<Option<SolvedMiss>> = Vec::new();
    solved.resize_with(misses.len(), || None);

    let nblocks = batchable.len().div_ceil(DEFAULT_BLOCK);
    let worker = || {
        (
            SolveCtx::new(),
            PointBlock::new(),
            vec![Vec::<SolveOutcome>::new(); Protocol::ALL.len()],
        )
    };
    let blocks: Vec<Vec<SolvedMiss>> =
        par_map_range(threads, nblocks, worker, |(ctx, block, outs), b| {
            let lo = b * DEFAULT_BLOCK;
            let hi = (lo + DEFAULT_BLOCK).min(batchable.len());
            block.clear();
            for &mi in &batchable[lo..hi] {
                block.push_net(&misses[mi].network());
            }
            block.compute_caps();
            for (pi, &p) in Protocol::ALL.iter().enumerate() {
                outs[pi].clear();
                ctx.solve_block(block, SolveRequest::sum_rate(p), &mut outs[pi])
                    .expect("closed-form batch solve is infallible");
            }
            (0..hi - lo)
                .map(|i| {
                    let mut best: Option<&SolveOutcome> = None;
                    for lane in outs.iter() {
                        let out = &lane[i];
                        if best.is_none_or(|b| out.value > b.value) {
                            best = Some(out);
                        }
                    }
                    let best = best.expect("Protocol::ALL is non-empty");
                    SolvedMiss {
                        outcome: Ok(Outcome::Decided(DecisionCore::from_solution(
                            &best.sum_rate_solution(),
                        ))),
                        kernel_solves: Protocol::ALL.len() as u64,
                        simplex_solves: 0,
                        warm_hits: 0,
                        pivots: 0,
                    }
                })
                .collect()
        });
    for (&mi, miss) in batchable.iter().zip(blocks.into_iter().flatten()) {
        solved[mi] = Some(miss);
    }

    let scalar_solved = par_map_indexed_with(threads, &scalar, SolveCtx::new, |ctx, _, &mi| {
        solve_counted(ctx, &misses[mi])
    });
    for (&mi, miss) in scalar.iter().zip(scalar_solved) {
        solved[mi] = Some(miss);
    }

    solved
        .into_iter()
        .map(|m| m.expect("every miss solved exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::{ChannelState, PowerSplit};

    fn q(gab: f64) -> Query {
        Query::new(
            ChannelState::new(gab, 1.0, 3.16),
            PowerSplit::symmetric(10.0),
        )
    }

    fn decision_bits(d: &Result<Decision, ServeError>) -> Option<(u64, u64, u64, ServedFrom)> {
        d.as_ref().ok().map(|d| {
            (
                d.sum_rate.to_bits(),
                d.ra.to_bits(),
                d.rb.to_bits(),
                d.served_from,
            )
        })
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        let config = ServeConfig::default().queue_capacity(2);
        let mut server = Server::new(&config);
        server.submit(q(0.1)).unwrap();
        server.submit(q(0.2)).unwrap();
        let rejected = server.submit(q(0.3)).unwrap_err();
        assert_eq!(rejected.0, q(0.3), "the query comes back untouched");
        assert_eq!(server.queued(), 2);
        // Draining frees the queue for the retry.
        let answers = server.drain();
        assert_eq!(answers.len(), 2);
        server.submit(rejected.0).unwrap();
    }

    #[test]
    fn within_batch_duplicates_share_one_solve() {
        let mut server = Server::new(&ServeConfig::default());
        for _ in 0..5 {
            server.submit(q(0.2)).unwrap();
        }
        let answers = server.drain();
        assert_eq!(answers.len(), 5);
        let stats = *server.last_batch();
        assert_eq!(stats.solved, 1, "one unique key, one solve");
        assert_eq!(stats.cache_hits, 4, "the other four ride along");
        assert_eq!(answers[0].as_ref().unwrap().served_from, ServedFrom::Kernel);
        for a in &answers[1..] {
            assert_eq!(a.as_ref().unwrap().served_from, ServedFrom::Cache);
            assert_eq!(
                a.as_ref().unwrap().sum_rate.to_bits(),
                answers[0].as_ref().unwrap().sum_rate.to_bits()
            );
        }
    }

    #[test]
    fn drain_matches_the_serial_engine_bit_for_bit() {
        let queries: Vec<Query> = (0..40).map(|i| q(0.05 + 0.11 * f64::from(i))).collect();
        let mut server = Server::new(&ServeConfig::default().threads(4));
        for &query in &queries {
            server.submit(query).unwrap();
        }
        let batched = server.drain();

        let mut engine = Engine::new(&ServeConfig::default());
        let serial: Vec<_> = queries.iter().map(|query| engine.serve(query)).collect();
        for (b, s) in batched.iter().zip(&serial) {
            assert_eq!(decision_bits(b), decision_bits(s));
        }
    }

    #[test]
    fn drain_is_thread_count_invariant() {
        let queries: Vec<Query> = (0..64).map(|i| q(0.05 + 0.07 * f64::from(i))).collect();
        let run = |threads: usize| {
            let mut server = Server::new(&ServeConfig::default().threads(threads));
            for &query in &queries {
                server.submit(query).unwrap();
            }
            server.drain()
        };
        let one = run(1);
        let four = run(4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(decision_bits(a), decision_bits(b));
        }
    }

    #[test]
    fn second_drain_of_the_same_states_is_all_hits() {
        let mut server = Server::new(&ServeConfig::default());
        for i in 0..8 {
            server.submit(q(0.1 + 0.2 * f64::from(i))).unwrap();
        }
        server.drain();
        for i in 0..8 {
            server.submit(q(0.1 + 0.2 * f64::from(i))).unwrap();
        }
        let answers = server.drain();
        let stats = *server.last_batch();
        assert_eq!(stats.solved, 0);
        assert_eq!(stats.cache_hits, 8);
        for a in &answers {
            assert_eq!(a.as_ref().unwrap().served_from, ServedFrom::Cache);
        }
    }

    #[test]
    fn batch_stats_expose_kernel_solves_through_the_snapshot() {
        let mut server = Server::new(&ServeConfig::default().threads(1));
        for i in 0..6 {
            server.submit(q(0.3 + 0.25 * f64::from(i))).unwrap();
        }
        let (_, delta) = crate::stats::scoped(|| server.drain());
        assert_eq!(delta.queries, 6);
        assert_eq!(delta.cache_misses, 6);
        assert!(
            delta.kernel_solves > 0,
            "inner/no-floor misses hit the kernel"
        );
        assert_eq!(server.last_batch().kernel_solves, delta.kernel_solves);
    }

    #[test]
    fn floored_batches_exercise_the_simplex_and_stay_deterministic() {
        let queries: Vec<Query> = (0..24)
            .map(|i| q(0.2 + 0.13 * f64::from(i)).with_floor(0.05, 0.05))
            .collect();
        let run = |threads: usize| {
            let mut server = Server::new(&ServeConfig::default().threads(threads));
            for &query in &queries {
                server.submit(query).unwrap();
            }
            let answers = server.drain();
            let stats = *server.last_batch();
            (answers, stats)
        };
        let (one, s1) = run(1);
        let (four, _) = run(4);
        assert!(s1.simplex_solves > 0, "floors force LP solves");
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(decision_bits(a), decision_bits(b));
        }
    }

    #[test]
    fn high_priority_sheds_the_newest_normal_query_at_capacity() {
        use crate::query::Priority;
        let mut server = Server::new(&ServeConfig::default().queue_capacity(2));
        server.submit(q(0.1)).unwrap();
        server.submit(q(0.2)).unwrap();
        // A high-priority submission displaces the newest normal one.
        let high = q(0.9).with_priority(Priority::High);
        let ((), delta) = crate::stats::scoped(|| server.submit(high).unwrap());
        assert_eq!(delta.shed, 1);
        assert_eq!(delta.rejects, 0);
        assert_eq!(server.queued(), 2, "queue stays at capacity");
        // A second high-priority submission sheds the remaining normal.
        server.submit(q(0.8).with_priority(Priority::High)).unwrap();
        // With only high-priority queries queued, even High is rejected.
        let ((), delta) = crate::stats::scoped(|| {
            assert!(server.submit(q(0.7).with_priority(Priority::High)).is_err());
        });
        assert_eq!(delta.rejects, 1);
        assert_eq!(delta.shed, 0);
        // The drain answers the admitted high-priority queries.
        let answers = server.drain();
        assert_eq!(answers.len(), 2);
        let kept: Vec<u64> = answers
            .iter()
            .map(|a| a.as_ref().unwrap().sum_rate.to_bits())
            .collect();
        let mut engine = Engine::new(&ServeConfig::default());
        assert_eq!(kept[0], engine.serve(&q(0.9)).unwrap().sum_rate.to_bits());
        assert_eq!(kept[1], engine.serve(&q(0.8)).unwrap().sum_rate.to_bits());
    }

    #[test]
    fn invalid_queries_are_answered_in_place_without_solving() {
        let mut server = Server::new(&ServeConfig::default());
        server.submit(q(0.2)).unwrap();
        server.submit(q(0.3).with_floor(f64::NAN, 0.1)).unwrap();
        server.submit(q(0.4)).unwrap();
        let (answers, delta) = crate::stats::scoped(|| server.drain());
        assert_eq!(answers.len(), 3);
        assert!(answers[0].is_ok());
        assert!(matches!(answers[1], Err(ServeError::InvalidQuery { .. })));
        assert!(answers[2].is_ok());
        assert_eq!(delta.validated_rejects, 1);
        assert_eq!(server.last_batch().validated_rejects, 1);
        assert_eq!(
            server.last_batch().solved,
            2,
            "the invalid query never reached the solver"
        );
    }

    #[test]
    fn zero_budget_drains_tag_every_degraded_occurrence_and_cache_nothing() {
        let config = ServeConfig::default().solve_budget(0);
        let mut server = Server::new(&config);
        // Two occurrences of the same floored key plus one healthy query.
        server.submit(q(0.5).with_floor(0.05, 0.05)).unwrap();
        server.submit(q(0.5).with_floor(0.05, 0.05)).unwrap();
        server.submit(q(0.9)).unwrap();
        let answers = server.drain();
        for a in &answers[..2] {
            let d = a.as_ref().unwrap();
            assert!(
                matches!(d.served_from, ServedFrom::Degraded { .. }),
                "every occurrence of a degraded miss is tagged Degraded, got {:?}",
                d.served_from
            );
            assert_eq!(d.protocol, Protocol::DirectTransmission);
        }
        assert_eq!(answers[2].as_ref().unwrap().served_from, ServedFrom::Kernel);
        assert_eq!(server.last_batch().degraded, 2);
        assert_eq!(
            server.engine_mut().cache().len(),
            1,
            "only the healthy decision was cached"
        );
        // Serial and batched chaos answers agree bitwise.
        let mut engine = Engine::new(&config);
        let serial = engine.serve(&q(0.5).with_floor(0.05, 0.05)).unwrap();
        let batched = answers[0].as_ref().unwrap();
        assert_eq!(serial.sum_rate.to_bits(), batched.sum_rate.to_bits());
        assert_eq!(serial.served_from, batched.served_from);
    }
}
