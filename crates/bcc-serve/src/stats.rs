//! Global, lock-free serving counters, in the style of
//! [`bcc_lp::stats`].
//!
//! The server drains batches across worker threads whose private
//! [`SolveCtx`](bcc_core::SolveCtx)s live only inside the parallel
//! region, so per-context counters cannot tell the operator how the
//! *service* is doing. Instead every serve records its outcome into a
//! small set of process-wide relaxed atomics plus calling-thread
//! twins, and diagnostics (the load generator, `bench-report`, the CI
//! gate) read deltas around a workload:
//!
//! ```
//! use bcc_channel::{ChannelState, PowerSplit};
//! use bcc_serve::{Engine, Query, ServeConfig};
//!
//! let mut engine = Engine::new(&ServeConfig::default());
//! let q = Query::new(ChannelState::new(0.2, 1.0, 3.16), PowerSplit::symmetric(10.0));
//! let (_, delta) = bcc_serve::stats::scoped(|| {
//!     engine.serve(&q).unwrap();
//!     engine.serve(&q).unwrap()
//! });
//! assert_eq!(delta.queries, 2);
//! assert_eq!(delta.cache_hits, 1);
//! ```
//!
//! The counters are monotone over the process lifetime (no reset);
//! consumers subtract snapshots via [`ServeStats::delta_since`]. As with
//! the LP counters, global deltas race against concurrent serves on
//! other threads; thread-local deltas around a completed workload on the
//! calling thread are exact. Batch drains record their whole batch on
//! the *draining* thread, so [`scoped`] around a drain is exact even
//! though the solves themselves ran on workers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static QUERIES: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static REJECTS: AtomicU64 = AtomicU64::new(0);
static KERNEL_SOLVES: AtomicU64 = AtomicU64::new(0);
static SIMPLEX_SOLVES: AtomicU64 = AtomicU64::new(0);
static DEGRADED: AtomicU64 = AtomicU64::new(0);
static SHED: AtomicU64 = AtomicU64::new(0);
static VALIDATED_REJECTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Cell<ServeStats> = const { Cell::new(ServeStats::zero()) };
}

/// A snapshot of the process-wide serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Queries answered (hit or miss; rejected queries are not counted).
    pub queries: u64,
    /// Queries answered from the decision cache, including within-batch
    /// duplicates that shared one solve.
    pub cache_hits: u64,
    /// Queries that required a fresh solve at the quantized key.
    pub cache_misses: u64,
    /// Cache entries displaced to make room for new ones.
    pub evictions: u64,
    /// Submissions refused because the queue was full (backpressure).
    pub rejects: u64,
    /// Closed-form kernel solves performed on behalf of misses
    /// (the [`SolveCtx`](bcc_core::SolveCtx) fast path).
    pub kernel_solves: u64,
    /// Simplex LP solves performed on behalf of misses.
    pub simplex_solves: u64,
    /// Queries answered from the conservative closed-form fallback
    /// because the primary solve was exhausted or faulted
    /// ([`ServedFrom::Degraded`](crate::ServedFrom::Degraded)).
    pub degraded: u64,
    /// Queued normal-priority queries displaced by high-priority
    /// submissions under overload (distinct from `rejects`, which count
    /// submissions that never entered the queue).
    pub shed: u64,
    /// Queries refused by [`Query::validate`](crate::Query::validate)
    /// before reaching the solver (non-finite or negative inputs).
    pub validated_rejects: u64,
}

impl ServeStats {
    /// The all-zero snapshot (`const` so it can seed a thread-local cell).
    pub const fn zero() -> ServeStats {
        ServeStats {
            queries: 0,
            cache_hits: 0,
            cache_misses: 0,
            evictions: 0,
            rejects: 0,
            kernel_solves: 0,
            simplex_solves: 0,
            degraded: 0,
            shed: 0,
            validated_rejects: 0,
        }
    }

    /// Counter increments since `earlier` (wrapping, so stale snapshots
    /// cannot panic).
    pub fn delta_since(&self, earlier: &ServeStats) -> ServeStats {
        ServeStats {
            queries: self.queries.wrapping_sub(earlier.queries),
            cache_hits: self.cache_hits.wrapping_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.wrapping_sub(earlier.cache_misses),
            evictions: self.evictions.wrapping_sub(earlier.evictions),
            rejects: self.rejects.wrapping_sub(earlier.rejects),
            kernel_solves: self.kernel_solves.wrapping_sub(earlier.kernel_solves),
            simplex_solves: self.simplex_solves.wrapping_sub(earlier.simplex_solves),
            degraded: self.degraded.wrapping_sub(earlier.degraded),
            shed: self.shed.wrapping_sub(earlier.shed),
            validated_rejects: self
                .validated_rejects
                .wrapping_sub(earlier.validated_rejects),
        }
    }

    /// Fraction of answered queries served from the cache, in `[0, 1]`
    /// (`0` when no queries were answered).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// Reads the current process-wide counter values.
pub fn snapshot() -> ServeStats {
    ServeStats {
        queries: QUERIES.load(Relaxed),
        cache_hits: CACHE_HITS.load(Relaxed),
        cache_misses: CACHE_MISSES.load(Relaxed),
        evictions: EVICTIONS.load(Relaxed),
        rejects: REJECTS.load(Relaxed),
        kernel_solves: KERNEL_SOLVES.load(Relaxed),
        simplex_solves: SIMPLEX_SOLVES.load(Relaxed),
        degraded: DEGRADED.load(Relaxed),
        shed: SHED.load(Relaxed),
        validated_rejects: VALIDATED_REJECTS.load(Relaxed),
    }
}

/// Reads the calling thread's private counter values (exact for
/// workloads served on this thread; see [`bcc_lp::stats::local_snapshot`]
/// for the full rationale).
pub fn local_snapshot() -> ServeStats {
    LOCAL.with(Cell::get)
}

/// Runs `f` and returns its result together with the calling thread's
/// counter delta across the call — race-free under `cargo test`'s
/// default parallelism because peer threads increment their own locals.
pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, ServeStats) {
    let before = local_snapshot();
    let result = f();
    (result, local_snapshot().delta_since(&before))
}

/// Adds `delta` to the globals and the calling thread's locals. Called
/// once per serve or per drained batch, never per solve.
pub(crate) fn record(delta: &ServeStats) {
    fn bump(counter: &AtomicU64, by: u64) {
        if by > 0 {
            counter.fetch_add(by, Relaxed);
        }
    }
    bump(&QUERIES, delta.queries);
    bump(&CACHE_HITS, delta.cache_hits);
    bump(&CACHE_MISSES, delta.cache_misses);
    bump(&EVICTIONS, delta.evictions);
    bump(&REJECTS, delta.rejects);
    bump(&KERNEL_SOLVES, delta.kernel_solves);
    bump(&SIMPLEX_SOLVES, delta.simplex_solves);
    bump(&DEGRADED, delta.degraded);
    bump(&SHED, delta.shed);
    bump(&VALIDATED_REJECTS, delta.validated_rejects);
    LOCAL.with(|c| {
        let s = c.get();
        c.set(ServeStats {
            queries: s.queries.wrapping_add(delta.queries),
            cache_hits: s.cache_hits.wrapping_add(delta.cache_hits),
            cache_misses: s.cache_misses.wrapping_add(delta.cache_misses),
            evictions: s.evictions.wrapping_add(delta.evictions),
            rejects: s.rejects.wrapping_add(delta.rejects),
            kernel_solves: s.kernel_solves.wrapping_add(delta.kernel_solves),
            simplex_solves: s.simplex_solves.wrapping_add(delta.simplex_solves),
            degraded: s.degraded.wrapping_add(delta.degraded),
            shed: s.shed.wrapping_add(delta.shed),
            validated_rejects: s.validated_rejects.wrapping_add(delta.validated_rejects),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_wrapping_and_componentwise() {
        let a = ServeStats {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            evictions: 1,
            rejects: 0,
            kernel_solves: 5,
            simplex_solves: 1,
            ..ServeStats::zero()
        };
        let mut b = a;
        b.queries += 7;
        b.cache_hits += 3;
        b.cache_misses += 4;
        b.rejects += 2;
        b.degraded += 1;
        b.shed += 2;
        b.validated_rejects += 3;
        let d = b.delta_since(&a);
        assert_eq!(d.queries, 7);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.cache_misses, 4);
        assert_eq!(d.rejects, 2);
        assert_eq!(d.evictions, 0);
        assert_eq!(d.degraded, 1);
        assert_eq!(d.shed, 2);
        assert_eq!(d.validated_rejects, 3);
        // Wrapping: a stale "later" snapshot must not panic.
        let _ = a.delta_since(&b);
    }

    #[test]
    fn hit_rate_handles_the_empty_snapshot() {
        assert_eq!(ServeStats::zero().hit_rate(), 0.0);
        let s = ServeStats {
            queries: 8,
            cache_hits: 6,
            ..ServeStats::zero()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn record_moves_globals_and_locals_together() {
        let delta = ServeStats {
            queries: 3,
            cache_hits: 1,
            cache_misses: 2,
            evictions: 0,
            rejects: 1,
            kernel_solves: 2,
            simplex_solves: 0,
            degraded: 1,
            shed: 1,
            validated_rejects: 2,
        };
        let (g0, l0) = (snapshot(), local_snapshot());
        record(&delta);
        let dg = snapshot().delta_since(&g0);
        let dl = local_snapshot().delta_since(&l0);
        // Global counters race with peer test threads, so only the
        // thread-local delta is asserted exactly.
        assert!(dg.queries >= 3);
        assert_eq!(dl, delta);
    }

    #[test]
    fn local_snapshot_ignores_other_threads() {
        let before = local_snapshot();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    record(&ServeStats {
                        queries: 5,
                        ..ServeStats::zero()
                    })
                })
                .join()
                .unwrap();
        });
        assert_eq!(
            local_snapshot().delta_since(&before),
            ServeStats::zero(),
            "peer-thread serves must not leak into this thread's counters"
        );
    }
}
