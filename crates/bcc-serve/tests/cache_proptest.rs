//! Property tests of the quantized-state cache's exactness contract.
//!
//! Over random query streams (random states, powers, floors, grid
//! steps, and deliberately tiny cache capacities that force evictions):
//!
//! * every answer served from the cache is **bitwise identical** to what
//!   a fresh, cold [`SolveCtx`] computes at the same quantized key — the
//!   cache may change *when* work happens, never *what* the answer is;
//! * cache occupancy never exceeds capacity, evictions notwithstanding.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::SolveCtx;
use bcc_serve::{cold_solve, Engine, QuantSpec, Query, ServeConfig, ServeError, ServedFrom};
use proptest::prelude::*;

/// One randomly-shaped query: gains, symmetric power, and (when the
/// selector is odd) a QoS floor that ranges from trivial to hopeless.
fn raw_query() -> impl Strategy<Value = Query> {
    (
        (0.01f64..10.0, 0.01f64..10.0, 0.01f64..10.0),
        0.5f64..40.0,
        (0u8..4, 0.0f64..2.0, 0.0f64..2.0),
    )
        .prop_map(|((gab, gar, gbr), power, (sel, ra, rb))| {
            let q = Query::new(
                ChannelState::new(gab, gar, gbr),
                PowerSplit::symmetric(power),
            );
            if sel % 2 == 1 {
                q.with_floor(ra, rb)
            } else {
                q
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exactness contract, end to end: serve a random stream through
    /// a small cache; every `Cache`-tagged answer must equal a cold
    /// solve of the same query bit for bit, and cached infeasibility
    /// must be reported identically hot or cold.
    #[test]
    fn cache_hits_equal_cold_solves_bitwise(
        raw in proptest::collection::vec(raw_query(), 1..50),
        step_db in 0.05f64..2.0,
        capacity in 8usize..64,
        duplicate_stride in 1usize..5,
    ) {
        let spec = QuantSpec::db_grid(step_db);
        let config = ServeConfig::default().quant(spec).cache_capacity(capacity);
        let mut engine = Engine::new(&config);
        let mut oracle = SolveCtx::new();

        // Interleave repeats into the stream so hits actually happen.
        let mut stream: Vec<Query> = Vec::new();
        for (i, &q) in raw.iter().enumerate() {
            stream.push(q);
            if i % duplicate_stride == 0 && i > 0 {
                stream.push(raw[i / 2]);
            }
        }

        let mut hits = 0u32;
        for query in &stream {
            let served = engine.serve(query);
            prop_assert!(engine.cache().len() <= engine.cache().capacity());
            let from_cache = matches!(&served, Ok(d) if d.served_from == ServedFrom::Cache);
            // `Engine::serve` doesn't tag provenance on errors, so check
            // every infeasible answer against the oracle instead.
            let infeasible = served == Err(ServeError::Infeasible);
            if !(from_cache || infeasible) {
                continue;
            }
            hits += u32::from(from_cache);
            match (&served, cold_solve(&mut oracle, query, &spec)) {
                (Ok(d), Ok(Some(cold))) => {
                    prop_assert_eq!(d.protocol, cold.protocol);
                    prop_assert_eq!(d.sum_rate.to_bits(), cold.sum_rate.to_bits());
                    prop_assert_eq!(d.ra.to_bits(), cold.ra.to_bits());
                    prop_assert_eq!(d.rb.to_bits(), cold.rb.to_bits());
                    prop_assert_eq!(d.durations, cold.durations);
                }
                (Err(ServeError::Infeasible), Ok(None)) => {}
                (served, cold) => {
                    panic!("cache and cold solve disagree: {served:?} vs {cold:?}");
                }
            }
        }
        // The interleaved repeats guarantee hits whenever the cache is
        // big enough that nothing was evicted in between.
        if stream.len() > raw.len() && capacity >= 2 * stream.len() {
            prop_assert!(hits > 0, "duplicate-bearing stream produced no hits");
        }
    }

    /// Occupancy stays bounded under pure insert pressure (mostly-miss
    /// streams into the smallest caches).
    #[test]
    fn occupancy_never_exceeds_capacity(
        raw in proptest::collection::vec(raw_query(), 1..80),
        capacity in 1usize..32,
    ) {
        let config = ServeConfig::default().cache_capacity(capacity);
        let mut engine = Engine::new(&config);
        for q in &raw {
            let _ = engine.serve(q);
            prop_assert!(
                engine.cache().len() <= engine.cache().capacity(),
                "len {} > capacity {}",
                engine.cache().len(),
                engine.cache().capacity()
            );
        }
    }
}
