//! Chaos replay: serving a long mixed query stream under a seeded
//! [`FaultPlan`] must (a) complete with every injected failure contained
//! to its query, (b) produce the exact same decision stream — provenance
//! and error slots included — on every replay, at any worker count and
//! any drain batch size, and (c) degrade *honestly*: every
//! `ServedFrom::Degraded` answer is feasible and no better than the
//! fault-free optimum at its key, and healthy answers are bitwise
//! identical to a fault-free run.
//!
//! The stream mixes hot-set hits, fresh misses, QoS floors, outer
//! bounds, and malformed queries (NaN floors), so every serve path is
//! under fire at once. The CI chaos leg runs this file under
//! `BCC_THREADS=1` and `BCC_THREADS=4`.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::protocol::Bound;
use bcc_num::faults::{FaultPlan, FaultSite};
use bcc_serve::{
    Decision, LoadSpec, Query, ServeConfig, ServeError, ServedFrom, Server, StreamKind,
};

const SEED: u64 = 0x5E4E_0009;
const QUERIES: u64 = 40_000;

/// Swallows the *injected* chaos panics (their unwinds are caught and
/// contained by the engine) so the test output is not buried in
/// backtraces, while still reporting genuine panics.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected worker panic"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn base_state() -> ChannelState {
    // Fig. 4 gains (-7, 0, 5) dB in linear units.
    ChannelState::new(0.199_526, 1.0, 3.162_278)
}

/// Every site armed at once: transient LP faults that recover on retry,
/// item-fated kernel poison and cache evict/corrupt keys, and worker
/// panics that occasionally double-fire past the retry.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(0xC4A0_5BCC)
        .with(FaultSite::LpIterationLimit, 0.05, 1)
        .with(FaultSite::LpWarmReject, 0.10, 2)
        .with(FaultSite::KernelPoison, 0.01, 1)
        .with(FaultSite::CacheEvict, 0.02, 1)
        .with(FaultSite::CacheCorrupt, 0.02, 1)
        .with(FaultSite::WorkerPanic, 0.05, 2)
}

/// The 40k-query mixed stream: hot-set traffic with periodic floors and
/// malformed queries, fresh misses every 16th slot, outer bounds
/// sprinkled in. A pure function of the constants, like every stream in
/// the workspace.
fn stream() -> Vec<Query> {
    let powers = PowerSplit::symmetric(10.0);
    let hot = LoadSpec::new(StreamKind::HotSet { pool: 24 }, SEED, base_state(), powers)
        .floor_every(7, 0.05, 0.05)
        .invalid_every(97);
    let fresh = LoadSpec::new(StreamKind::Fresh, SEED ^ 0xF00D, base_state(), powers);
    (0..QUERIES)
        .map(|k| {
            if k % 131 == 77 {
                fresh.query(k).with_bound(Bound::Outer)
            } else if k % 16 == 5 {
                fresh.query(k)
            } else {
                hot.query(k)
            }
        })
        .collect()
}

/// Everything observable about one answer, with rates as exact bits.
/// Error slots fingerprint too — a replay that turns one error into a
/// different error (or an answer) is a determinism bug.
fn fingerprint(r: &Result<Decision, ServeError>) -> String {
    match r {
        Ok(d) => format!(
            "{:?}|{:016x}|{:016x}|{:016x}|{:?}|{:?}",
            d.protocol,
            d.sum_rate.to_bits(),
            d.ra.to_bits(),
            d.rb.to_bits(),
            d.durations,
            d.served_from,
        ),
        Err(e) => format!("err:{e}"),
    }
}

/// Serves the stream through a fresh batched server, draining every
/// `batch` submissions.
fn replay(log: &[Query], config: &ServeConfig, batch: usize) -> Vec<Result<Decision, ServeError>> {
    let mut server = Server::new(config);
    let mut out = Vec::with_capacity(log.len());
    for chunk in log.chunks(batch) {
        for &q in chunk {
            server.submit(q).expect("queue sized for the batch");
        }
        out.append(&mut server.drain());
    }
    out
}

#[test]
fn chaos_stream_replays_bit_identically_across_threads_and_batches() {
    silence_injected_panics();
    let log = stream();
    let config = ServeConfig::default().faults(chaos_plan());
    let reference: Vec<String> = replay(&log, &config.threads(1), 512)
        .iter()
        .map(fingerprint)
        .collect();
    // The chaos run actually exercised the degraded and validation paths.
    assert!(
        reference.iter().any(|f| f.contains("Degraded")),
        "the plan should degrade at least one answer"
    );
    assert!(
        reference.iter().any(|f| f.contains("invalid query")),
        "the stream should carry malformed queries"
    );
    // Same plan, same stream: bit-identical on replay and under every
    // (threads × batch) combination, including batch boundaries that
    // slice fated and healthy keys differently.
    for (threads, batch) in [(1, 512), (1, 16), (4, 16), (4, 512)] {
        let again: Vec<String> = replay(&log, &config.threads(threads), batch)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            again, reference,
            "threads = {threads}, batch = {batch} diverged"
        );
    }
}

#[test]
fn degraded_answers_are_feasible_conservative_and_healthy_answers_clean() {
    silence_injected_panics();
    let log = stream();
    let clean = replay(&log, &ServeConfig::default(), 512);
    let chaos_cfg = ServeConfig::default().faults(chaos_plan());
    let (chaos, delta) = bcc_serve::stats::scoped(|| replay(&log, &chaos_cfg, 512));
    assert_eq!(delta.queries, QUERIES);
    assert!(delta.degraded > 0, "the plan should degrade some answers");
    assert!(delta.validated_rejects > 0, "malformed queries were served");

    let mut degraded = 0u64;
    for (i, (c, cl)) in chaos.iter().zip(&clean).enumerate() {
        match (c, cl) {
            (Ok(d), _) if matches!(d.served_from, ServedFrom::Degraded { .. }) => {
                degraded += 1;
                // Degraded answers are conservative: the closed-form DT
                // fallback is one of the candidates the full selection
                // maximises over, so it can never beat the optimum...
                let full = cl
                    .as_ref()
                    .unwrap_or_else(|e| panic!("query {i}: degraded Ok but clean {e}"));
                assert!(
                    d.sum_rate <= full.sum_rate * (1.0 + 1e-9) + 1e-12,
                    "query {i}: degraded {} beats the optimum {}",
                    d.sum_rate,
                    full.sum_rate
                );
                // ...and feasible: a served fallback met the floor.
                if let Some((ra, rb)) = log[i].floor {
                    assert!(
                        d.ra >= ra - 1e-9 && d.rb >= rb - 1e-9,
                        "query {i}: degraded answer misses the floor"
                    );
                }
            }
            (Ok(d), Ok(full)) => {
                // Healthy chaos answers are bitwise the fault-free ones
                // (provenance aside: an evict-fated key re-solves where
                // the clean run hits its cache).
                assert_eq!(d.protocol, full.protocol, "query {i}");
                assert_eq!(d.sum_rate.to_bits(), full.sum_rate.to_bits(), "query {i}");
                assert_eq!(d.ra.to_bits(), full.ra.to_bits(), "query {i}");
                assert_eq!(d.rb.to_bits(), full.rb.to_bits(), "query {i}");
            }
            (Ok(d), Err(e)) => {
                panic!("query {i}: chaos answered {d:?} where clean failed with {e}")
            }
            (Err(ServeError::DegradedUnavailable { .. }), _) => {
                degraded += 1;
                // Honest refusal: the fallback could not meet the floor.
                assert!(log[i].floor.is_some(), "query {i}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "query {i}: errors diverge"),
            (Err(e), Ok(_)) => {
                panic!("query {i}: chaos failed with {e} where clean answered")
            }
        }
    }
    assert_eq!(degraded, delta.degraded, "stats agree with the stream");
}

#[test]
fn empty_plan_and_unbounded_budget_are_bitwise_invisible() {
    silence_injected_panics();
    let log = stream();
    let plain: Vec<String> = replay(&log, &ServeConfig::default(), 512)
        .iter()
        .map(fingerprint)
        .collect();
    // Arming the empty plan changes nothing (the scopes never push).
    let armed_empty: Vec<String> =
        replay(&log, &ServeConfig::default().faults(FaultPlan::none()), 512)
            .iter()
            .map(fingerprint)
            .collect();
    assert_eq!(plain, armed_empty);
    // A budget that never binds routes every miss through the guarded
    // scalar path (scopes, catch_unwind, per-attempt accounting) — and
    // the stream must still be bitwise identical to the lane kernels.
    let guarded: Vec<String> = replay(&log, &ServeConfig::default().solve_budget(u64::MAX), 512)
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(plain, guarded);
}
