//! Deterministic replay: serving a recorded query log twice — and at
//! different worker counts — must produce bit-identical decision
//! streams, provenance included.
//!
//! The serving layer's contract is that answers are a pure function of
//! the query log: the cache probe/commit phases are serial, miss
//! deduplication is first-seen order, and every solve is
//! history-independent. This test records a mixed log (repeated, hot-set
//! and fresh states; floors and outer bounds sprinkled in), serves it
//! through fresh servers under several configurations, and compares the
//! streams bitwise. The CI cross-validation matrix runs this file under
//! `BCC_THREADS=1` and `BCC_THREADS=4`, so the `threads: None` default
//! path is exercised at both counts as well.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::protocol::Bound;
use bcc_serve::{Decision, Engine, LoadSpec, Query, ServeConfig, ServeError, Server, StreamKind};

const SEED: u64 = 0x5E4E_0007;

fn base_state() -> ChannelState {
    // Fig. 4 gains (-7, 0, 5) dB in linear units.
    ChannelState::new(0.199_526, 1.0, 3.162_278)
}

/// A mixed query log touching every serve path: cache hits (repeated +
/// hot set), fresh misses, QoS floors (feasible and hopeless) and outer
/// bounds.
fn recorded_log() -> Vec<Query> {
    let powers = PowerSplit::symmetric(10.0);
    let hot = LoadSpec::new(StreamKind::HotSet { pool: 12 }, SEED, base_state(), powers)
        .floor_every(7, 0.05, 0.05);
    let fresh = LoadSpec::new(StreamKind::Fresh, SEED ^ 0xFF, base_state(), powers);
    let mut log = Vec::new();
    for k in 0..160 {
        log.push(hot.query(k));
        if k % 3 == 0 {
            log.push(fresh.query(k));
        }
        if k % 11 == 0 {
            log.push(fresh.query(k).with_bound(Bound::Outer));
        }
        if k % 23 == 0 {
            // A hopeless floor: cached infeasibility must replay too.
            log.push(hot.query(k).with_floor(30.0, 30.0));
        }
    }
    log
}

/// Everything observable about one answer, with rates as exact bits.
fn fingerprint(r: &Result<Decision, ServeError>) -> String {
    match r {
        Ok(d) => format!(
            "{:?}|{:016x}|{:016x}|{:016x}|{:?}|{:?}",
            d.protocol,
            d.sum_rate.to_bits(),
            d.ra.to_bits(),
            d.rb.to_bits(),
            d.durations,
            d.served_from,
        ),
        Err(e) => format!("err:{e}"),
    }
}

/// Serves the log through a fresh batched server, draining every
/// `batch` submissions.
fn replay_batched(log: &[Query], config: &ServeConfig, batch: usize) -> Vec<String> {
    let mut server = Server::new(config);
    let mut out = Vec::with_capacity(log.len());
    for chunk in log.chunks(batch) {
        for &q in chunk {
            server.submit(q).expect("queue sized for the batch");
        }
        out.extend(server.drain().iter().map(fingerprint));
    }
    out
}

#[test]
fn replaying_the_log_is_bit_identical() {
    let log = recorded_log();
    let config = ServeConfig::default();
    let first = replay_batched(&log, &config, 64);
    let second = replay_batched(&log, &config, 64);
    assert_eq!(first, second, "same log, same config ⇒ same stream");
}

#[test]
fn decision_streams_are_worker_count_invariant() {
    let log = recorded_log();
    let one = replay_batched(&log, &ServeConfig::default().threads(1), 64);
    let four = replay_batched(&log, &ServeConfig::default().threads(4), 64);
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a, b, "query {i} diverges between 1 and 4 workers");
    }
    // And under the ambient BCC_THREADS (the CI matrix pins 1 and 4).
    let ambient = replay_batched(&log, &ServeConfig::default(), 64);
    assert_eq!(one, ambient);
}

#[test]
fn batch_size_does_not_change_answers() {
    // Different drain boundaries change which queries are within-batch
    // duplicates vs cache hits of an earlier batch — but both are served
    // from the same stored decision, so the streams still agree bitwise
    // (provenance included: every non-first occurrence of a key is
    // `Cache` either way).
    let log = recorded_log();
    let config = ServeConfig::default();
    let small = replay_batched(&log, &config, 16);
    let large = replay_batched(&log, &config, 512);
    assert_eq!(small, large);
}

#[test]
fn closed_loop_and_batched_paths_agree() {
    let log = recorded_log();
    let mut engine = Engine::new(&ServeConfig::default());
    let serial: Vec<String> = log.iter().map(|q| fingerprint(&engine.serve(q))).collect();
    let batched = replay_batched(&log, &ServeConfig::default().threads(4), 64);
    assert_eq!(serial, batched);
}
