//! Operational demonstration of Theorem 3's random binning.
//!
//! In TDBC the relay does not resend `w_a`; it sends only the **bin
//! index** `s_a(w_a)` (here: over a clean broadcast, to isolate the
//! binning mechanism). Terminal `b` must disambiguate the bin using its
//! *side information* — the noisy observation of `a`'s codeword it
//! overheard during phase 1 through `BSC(p_ab)`.
//!
//! Information-theoretically this is Slepian–Wolf-style source coding with
//! side information: reliable decoding needs the residual uncertainty to
//! fit in the bin rate,
//!
//! ```text
//! log2(M/B)  <  n · I(X; Y_side) = n·(1 − h₂(p_ab))
//! ```
//!
//! where `M` is the message count, `B` the bin count and `n` the codeword
//! length. The simulator sweeps `B` and exposes the threshold.

use bcc_coding::binning::BinPartition;
use bcc_coding::gf2::hamming_distance;
use rand::Rng;

/// Configuration of one binning experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinningConfig {
    /// Number of messages `M` (random codebook size).
    pub num_messages: usize,
    /// Codeword length `n` in bits.
    pub block_length: usize,
    /// Crossover probability of the side-information link `BSC(p_ab)`.
    pub side_crossover: f64,
    /// Number of bins `B` the relay compresses into.
    pub num_bins: u32,
}

impl BinningConfig {
    /// Bits the relay saves per message versus retransmission:
    /// `log2(M) − log2(B)`.
    pub fn bin_saving_bits(&self) -> f64 {
        (self.num_messages as f64).log2() - (self.num_bins as f64).log2()
    }

    /// The Slepian–Wolf-style budget: `n·(1 − h₂(p_ab))` bits of side
    /// information.
    pub fn side_information_bits(&self) -> f64 {
        self.block_length as f64 * (1.0 - bcc_num::special::binary_entropy(self.side_crossover))
    }
}

/// Result of a batch of binning decodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinningResult {
    /// Decodes attempted.
    pub trials: usize,
    /// Correct message recoveries at terminal `b`.
    pub correct: usize,
}

impl BinningResult {
    /// Message error rate.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.correct as f64 / self.trials as f64
    }
}

/// Runs `trials` decode attempts: draw a random codebook and partition,
/// pick a uniform message, pass its codeword through the side channel,
/// then decode from (bin index, noisy side observation) by minimum
/// Hamming distance within the bin.
///
/// # Panics
///
/// Panics if any configuration field is degenerate (zero sizes, crossover
/// outside `[0, 0.5]`).
pub fn run_binning_decode<R: Rng + ?Sized>(
    cfg: &BinningConfig,
    trials: usize,
    rng: &mut R,
) -> BinningResult {
    assert!(cfg.num_messages > 1, "need at least two messages");
    assert!(cfg.block_length > 0, "need a positive block length");
    assert!(
        (0.0..=0.5).contains(&cfg.side_crossover),
        "side crossover must be in [0, 0.5]"
    );
    assert!(cfg.num_bins > 0, "need at least one bin");
    assert!(trials > 0, "need at least one trial");

    let mut correct = 0;
    for _ in 0..trials {
        // Fresh random codebook per trial (the random-coding ensemble).
        let codebook: Vec<Vec<u8>> = (0..cfg.num_messages)
            .map(|_| {
                (0..cfg.block_length)
                    .map(|_| rng.gen_range(0..2u8))
                    .collect()
            })
            .collect();
        let partition = BinPartition::random(cfg.num_messages, cfg.num_bins, rng);
        let truth = rng.gen_range(0..cfg.num_messages);
        // Side observation through BSC(p_ab).
        let observed: Vec<u8> = codebook[truth]
            .iter()
            .map(|&b| {
                if rng.gen::<f64>() < cfg.side_crossover {
                    b ^ 1
                } else {
                    b
                }
            })
            .collect();
        // Relay announces the bin (clean); b decodes within it.
        let decoded = partition.decode_with_score(partition.bin_of(truth), |w| {
            -(hamming_distance(&codebook[w], &observed) as f64)
        });
        if decoded == Some(truth) {
            correct += 1;
        }
    }
    BinningResult { trials, correct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_bin_per_message_is_error_free() {
        // B = M: the bin identifies the message; no side info needed.
        let cfg = BinningConfig {
            num_messages: 64,
            block_length: 15,
            side_crossover: 0.4,
            num_bins: 4096,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_binning_decode(&cfg, 300, &mut rng);
        // With B >> M, bins are almost surely singletons.
        assert!(r.error_rate() < 0.02, "error rate {}", r.error_rate());
    }

    #[test]
    fn clean_side_information_allows_heavy_binning() {
        // p_ab = 0: the side observation IS the codeword; distinct
        // codewords collide only by codebook chance, so even B = 2 works
        // with long blocks.
        let cfg = BinningConfig {
            num_messages: 256,
            block_length: 63,
            side_crossover: 0.0,
            num_bins: 2,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_binning_decode(&cfg, 300, &mut rng);
        assert!(r.error_rate() < 0.02, "error rate {}", r.error_rate());
        assert!(cfg.bin_saving_bits() > 6.9, "saves ~7 bits per message");
    }

    #[test]
    fn threshold_behaviour_in_bin_count() {
        // Fixed noisy side channel; sweep B. Below the Slepian-Wolf budget
        // decoding succeeds, far above it fails.
        let base = BinningConfig {
            num_messages: 1024,
            block_length: 63,
            side_crossover: 0.05,
            num_bins: 0, // set per case
        };
        let mut rng = StdRng::seed_from_u64(3);
        // Plenty of bins (small lists): easy.
        let easy = run_binning_decode(
            &BinningConfig {
                num_bins: 256,
                ..base
            },
            200,
            &mut rng,
        );
        // One bin: decode from side info alone among all 1024 messages —
        // still fine because n(1-h2(0.05)) ≈ 45 bits >> 10 bits needed.
        let one_bin = run_binning_decode(
            &BinningConfig {
                num_bins: 1,
                ..base
            },
            200,
            &mut rng,
        );
        assert!(easy.error_rate() < 0.05, "easy case: {}", easy.error_rate());
        assert!(
            one_bin.error_rate() < 0.05,
            "one-bin case: {}",
            one_bin.error_rate()
        );

        // Now starve the side information (p → 0.5): one bin must fail.
        let starved = BinningConfig {
            side_crossover: 0.49,
            num_bins: 1,
            ..base
        };
        let r = run_binning_decode(&starved, 200, &mut rng);
        assert!(
            r.error_rate() > 0.9,
            "useless side info must break single-bin decoding: {}",
            r.error_rate()
        );
    }

    #[test]
    fn budget_accounting() {
        let cfg = BinningConfig {
            num_messages: 1024,
            block_length: 63,
            side_crossover: 0.05,
            num_bins: 16,
        };
        assert!((cfg.bin_saving_bits() - 6.0).abs() < 1e-12);
        // 63·(1 − h2(0.05)) ≈ 44.9 bits of side information.
        assert!((cfg.side_information_bits() - 44.93).abs() < 0.1);
        // The regime tested is comfortably inside the budget.
        assert!(cfg.bin_saving_bits() < cfg.side_information_bits());
    }

    #[test]
    #[should_panic(expected = "at least two messages")]
    fn degenerate_config_rejected() {
        let cfg = BinningConfig {
            num_messages: 1,
            block_length: 7,
            side_crossover: 0.1,
            num_bins: 1,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let _ = run_binning_decode(&cfg, 1, &mut rng);
    }
}
