//! City-scale relay assignment — the **simulator-side twin** of the
//! streamed [`CityEvaluator`](bcc_core::city::CityEvaluator).
//!
//! The evaluator fans one job per pair across worker threads and runs
//! each pair's relay edges through the SoA block kernel, reducing on
//! the fly to a fixed-width candidate list. This twin is the obvious
//! serial reference: one [`SolveCtx`], one scalar
//! [`solve_one`](SolveCtx::solve_one) per `(pair, relay, protocol)`
//! edge in plain nested-loop order, the **full** `K × n` rate matrix
//! held in memory. A genuinely different driver over the same per-edge
//! arithmetic — so under a shared topology and seed the two paths must
//! agree **bit for bit** on every edge rate, every assignment, and
//! every aggregate (the cross-validation suite's contract).

use bcc_channel::Topology;
use bcc_core::city::{CandidateEdge, Schedule};
use bcc_core::error::CoreError;
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::kernel::{SolveCtx, SolveRequest};
use bcc_core::protocol::Protocol;
use bcc_core::scenario::mix_seed;
use bcc_num::Db;

/// The serial city study: the full pair × relay best-protocol sum-rate
/// matrix plus the deterministic random-assignment stream.
#[derive(Debug, Clone)]
pub struct CityAssignmentSim {
    /// `rates[k][j]` = best-over-protocols sum rate of pair `k` through
    /// relay `j`.
    rates: Vec<Vec<f64>>,
    assign_seed: u64,
}

impl CityAssignmentSim {
    /// Solves every `(pair, relay)` edge of `topology` serially at
    /// `power_db` dB per node, taking the best sum rate over
    /// `protocols` (first strictly-greater wins — the evaluator's
    /// tie-break).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] on an invalid edge geometry, and any
    /// LP failure from the scalar kernel.
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty or `power_db` is non-finite.
    pub fn run(
        topology: &Topology,
        power_db: f64,
        protocols: &[Protocol],
        assign_seed: u64,
    ) -> Result<Self, CoreError> {
        assert!(!protocols.is_empty(), "need at least one protocol");
        assert!(power_db.is_finite(), "power must be finite dB");
        let power = Db::new(power_db).to_linear();
        let (k, n) = (topology.num_pairs(), topology.num_relays());
        let mut ctx = SolveCtx::new();
        let mut rates = vec![vec![0.0f64; n]; k];
        for (pair, row) in rates.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let state =
                    topology
                        .try_edge_state(pair, j)
                        .map_err(|e| CoreError::InvalidInput {
                            context: format!("city edge (pair {pair}, relay {j}): {e}"),
                        })?;
                let net = GaussianNetwork::new(power, state);
                let mut best = f64::NEG_INFINITY;
                for &p in protocols {
                    let v = ctx.solve_one(&net, SolveRequest::sum_rate(p))?.value;
                    if v > best {
                        best = v;
                    }
                }
                *slot = best;
            }
        }
        Ok(CityAssignmentSim { rates, assign_seed })
    }

    /// Number of pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.rates.len()
    }

    /// Number of candidate relays `n`.
    pub fn num_relays(&self) -> usize {
        self.rates[0].len()
    }

    /// The best-protocol sum rate of pair `k` through relay `j`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `j` is out of range.
    pub fn edge_rate(&self, k: usize, j: usize) -> f64 {
        self.rates[k][j]
    }

    /// Pair `k`'s best edge (lowest relay index on ties — the
    /// evaluator's deterministic tie-break).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn best_edge(&self, k: usize) -> CandidateEdge {
        let mut best = CandidateEdge {
            relay: 0,
            rate: f64::NEG_INFINITY,
        };
        for (j, &rate) in self.rates[k].iter().enumerate() {
            if rate > best.rate {
                best = CandidateEdge { relay: j, rate };
            }
        }
        best
    }

    /// The greedy assignment: every pair on its best edge.
    pub fn greedy_assignment(&self) -> Vec<usize> {
        (0..self.num_pairs())
            .map(|k| self.best_edge(k).relay)
            .collect()
    }

    /// The deterministic random baseline: pair `k` on relay
    /// `mix_seed(assign_seed, k) mod n` — the evaluator's stream.
    pub fn random_assignment(&self) -> Vec<usize> {
        let n = self.num_relays() as u64;
        (0..self.num_pairs())
            .map(|k| (mix_seed(self.assign_seed, k as u64) % n) as usize)
            .collect()
    }

    /// Mean congestion-free per-pair sum rate of `assign` (the twin of
    /// [`CityResult::best_edge_rate`](bcc_core::city::CityResult::best_edge_rate),
    /// summed in pair order).
    ///
    /// # Panics
    ///
    /// Panics if `assign` has the wrong length or names an out-of-range
    /// relay.
    pub fn best_edge_rate(&self, assign: &[usize]) -> f64 {
        assert_eq!(assign.len(), self.num_pairs(), "one relay per pair");
        let total: f64 = assign
            .iter()
            .enumerate()
            .map(|(k, &j)| self.rates[k][j])
            .sum();
        total / self.num_pairs() as f64
    }

    /// City-wide scheduled sum rate of `assign`: per non-empty relay,
    /// `schedule`'s aggregate of its assigned pairs' rates in pair
    /// order, summed over relays — the same bucket arithmetic as
    /// [`CityResult::scheduled_rate`](bcc_core::city::CityResult::scheduled_rate),
    /// so shared inputs agree bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `assign` has the wrong length or names an out-of-range
    /// relay.
    pub fn scheduled_rate(&self, assign: &[usize], schedule: Schedule) -> f64 {
        assert_eq!(assign.len(), self.num_pairs(), "one relay per pair");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); self.num_relays()];
        for (k, &j) in assign.iter().enumerate() {
            buckets[j].push(self.rates[k][j]);
        }
        buckets
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| schedule.aggregate_sum_rates(b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_core::city::{AssignmentKind, DEFAULT_ASSIGN_SEED};
    use bcc_core::scenario::Scenario;

    const PROTOCOLS: [Protocol; 2] = [Protocol::Mabc, Protocol::Tdbc];

    #[test]
    fn matches_evaluator_bitwise() {
        // The serial scalar driver and the blocked parallel evaluator
        // must agree bit for bit on edges, assignments and aggregates —
        // a genuine two-implementation differential check.
        let topo = Topology::random(42, 18, 6, 9.0, 3.0).unwrap();
        let sim = CityAssignmentSim::run(&topo, 11.0, &PROTOCOLS, DEFAULT_ASSIGN_SEED).unwrap();
        let res = Scenario::city(topo, 11.0)
            .protocols(PROTOCOLS)
            .threads(4)
            .build()
            .sweep()
            .unwrap();
        for k in 0..sim.num_pairs() {
            let best = res.pair(k).best();
            assert_eq!(sim.best_edge(k).relay, best.relay, "pair {k}");
            assert_eq!(sim.best_edge(k).rate, best.rate, "pair {k}");
            let rand = res.pair(k).random();
            assert_eq!(sim.edge_rate(k, rand.relay), rand.rate, "pair {k}");
        }
        assert_eq!(
            sim.greedy_assignment(),
            res.assignment(AssignmentKind::Greedy)
        );
        assert_eq!(
            sim.random_assignment(),
            res.assignment(AssignmentKind::Random)
        );
        assert_eq!(
            sim.best_edge_rate(&sim.greedy_assignment()),
            res.best_edge_rate(AssignmentKind::Greedy)
        );
        assert_eq!(
            sim.best_edge_rate(&sim.random_assignment()),
            res.best_edge_rate(AssignmentKind::Random)
        );
        for s in bcc_core::city::SCHEDULES {
            assert_eq!(
                sim.scheduled_rate(&sim.greedy_assignment(), s),
                res.scheduled_rate(AssignmentKind::Greedy, s),
                "{s}"
            );
            assert_eq!(
                sim.scheduled_rate(&sim.random_assignment(), s),
                res.scheduled_rate(AssignmentKind::Random, s),
                "{s}"
            );
        }
    }

    #[test]
    fn refined_evaluator_assignment_checks_out_on_the_full_matrix() {
        // The evaluator's refined assignment only sees candidate-list
        // rates; re-scored against the twin's full matrix it must give
        // the same scheduled value and still dominate both seeds.
        let topo = Topology::random(7, 20, 5, 8.0, 3.0).unwrap();
        let sim = CityAssignmentSim::run(&topo, 10.0, &PROTOCOLS, DEFAULT_ASSIGN_SEED).unwrap();
        let res = Scenario::city(topo, 10.0)
            .protocols(PROTOCOLS)
            .build()
            .sweep()
            .unwrap();
        let refined = res.assignment(AssignmentKind::Refined);
        let s = Schedule::TimeShare;
        assert_eq!(
            sim.scheduled_rate(&refined, s),
            res.scheduled_rate(AssignmentKind::Refined, s)
        );
        assert!(sim.scheduled_rate(&refined, s) >= sim.scheduled_rate(&sim.greedy_assignment(), s));
        assert!(sim.scheduled_rate(&refined, s) >= sim.scheduled_rate(&sim.random_assignment(), s));
    }

    #[test]
    fn greedy_dominates_every_assignment_on_the_full_matrix() {
        let topo = Topology::grid(12, 9, 10.0, 3.0).unwrap();
        let sim = CityAssignmentSim::run(&topo, 10.0, &PROTOCOLS, 77).unwrap();
        let greedy = sim.best_edge_rate(&sim.greedy_assignment());
        // Exhaustive per-pair check, not just the random baseline.
        for j in 0..sim.num_relays() {
            let uniform = vec![j; sim.num_pairs()];
            assert!(greedy >= sim.best_edge_rate(&uniform), "relay {j}");
        }
    }
}
