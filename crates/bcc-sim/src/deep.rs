//! Importance-sampled deep-outage estimation — the **simulator-side
//! twin** of the batch evaluator's
//! [`Evaluator::deep_outage`](bcc_core::deep) engine.
//!
//! Plain Monte-Carlo outage estimation ([`crate::outage`]) cannot resolve
//! probabilities below its `1/trials` floor. This module drives the same
//! exponentially tilted fade sampler
//! ([`FadingModel::sample_power_tilted`]) through the classic serial
//! [`McConfig`] convention: one deterministic child stream per trial, one
//! [`SolveCtx`] reused across every faded solve, and a weighted tail
//! estimator
//! ([`WeightedTailStats`]) in strict
//! trial order. Under a *shared* seed on a single-cell grid the evaluator
//! and this driver draw identical streams and reduce in the same order,
//! so they must agree **bit for bit** — a genuine two-implementation
//! differential check (see the `deep_outage` integration suite). Under
//! *independent* seeds they must agree statistically.
//!
//! The estimator contract matches the evaluator's: the weighted outage
//! probability `p̂ = (1/n)·Σ wᵢ·1{rateᵢ < target}` is unbiased for any
//! tilt, and a cell with zero weighted hits is reported as **unresolved**
//! (`None`), never as a silently extrapolated zero.
//!
//! [`FadingModel::sample_power_tilted`]: bcc_channel::fading::FadingModel::sample_power_tilted

use bcc_channel::fading::{FadingModel, PowerTilt};
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::kernel::SolveCtx;
use bcc_core::protocol::Protocol;
use bcc_core::scenario::trial_stream;
use bcc_core::SolveRequest;
use bcc_num::special::log2_1p;
use bcc_num::stats::WeightedTailStats;

use crate::mc::McConfig;

/// Per-trial `(optimal sum rate, likelihood-ratio weight)` pairs of
/// `protocol` under tilted i.i.d. per-link fading, in trial order.
///
/// Each trial draws its three fade powers from
/// `trial_stream(cfg.seed, trial)` in the fixed `(ab, ar, br)` link
/// order — the same stream discipline as a single-cell evaluator run —
/// and the trial's weight is the product of the three per-link
/// defensive-mixture weights. `tilt = [PowerTilt::NONE; 3]` reproduces
/// the plain [`crate::ergodic::sum_rate_samples`] draws bit for bit with
/// every weight exactly 1. A deep-fade LP failure counts as rate 0.
///
/// # Panics
///
/// Panics if `fading` has no Gamma fade power (see
/// [`FadingModel::supports_tilt`]).
pub fn deep_sum_rate_samples(
    net: &GaussianNetwork,
    protocol: Protocol,
    fading: FadingModel,
    tilt: [PowerTilt; 3],
    cfg: &McConfig,
) -> Vec<(f64, f64)> {
    assert!(
        fading.supports_tilt(),
        "deep-outage importance sampling needs a Gamma fade power \
         (Rayleigh or Nakagami-m), got {fading:?}"
    );
    let mut ctx = SolveCtx::new();
    let state = net.state();
    (0..cfg.trials)
        .map(|trial| {
            let mut rng = trial_stream(cfg.seed, trial as u64);
            let (fab, wab) = fading.sample_power_tilted(&mut rng, tilt[0]);
            let (far, war) = fading.sample_power_tilted(&mut rng, tilt[1]);
            let (fbr, wbr) = fading.sample_power_tilted(&mut rng, tilt[2]);
            let faded = net.with_state(state.faded(fab, far, fbr));
            let rate = ctx
                .solve_one(&faded, SolveRequest::sum_rate(protocol))
                .map(|o| o.value)
                .unwrap_or(0.0);
            (rate, wab * war * wbr)
        })
        .collect()
}

/// Weighted outage statistics of one protocol at one network under a
/// fixed importance tilt.
///
/// The profile stores the raw `(rate, weight)` stream; every tail query
/// re-reduces it in trial order through
/// [`WeightedTailStats`], so the
/// reported probability, relative error and effective sample size are
/// bit-identical to a single-cell evaluator run at the same seed.
#[derive(Debug, Clone)]
pub struct WeightedOutageProfile {
    samples: Vec<(f64, f64)>,
}

impl WeightedOutageProfile {
    /// Estimates the weighted sum-rate stream of `protocol` under
    /// `fading` tilted by `tilt` (see [`deep_sum_rate_samples`]).
    pub fn estimate(
        net: &GaussianNetwork,
        protocol: Protocol,
        fading: FadingModel,
        tilt: [PowerTilt; 3],
        cfg: &McConfig,
    ) -> Self {
        WeightedOutageProfile::from_samples(deep_sum_rate_samples(net, protocol, fading, tilt, cfg))
    }

    /// Builds a profile from explicit `(rate, weight)` pairs in trial
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, a rate is NaN, or a weight is not
    /// finite and non-negative.
    pub fn from_samples(samples: Vec<(f64, f64)>) -> Self {
        assert!(!samples.is_empty(), "need at least one weighted trial");
        for &(rate, weight) in &samples {
            assert!(!rate.is_nan(), "sum-rate samples must not be NaN");
            assert!(
                weight.is_finite() && weight >= 0.0,
                "IS weight must be finite and non-negative, got {weight}"
            );
        }
        WeightedOutageProfile { samples }
    }

    /// Number of Monte-Carlo trials behind the profile.
    pub fn trials(&self) -> usize {
        self.samples.len()
    }

    /// The raw per-trial `(rate, weight)` pairs, in trial order.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// The full weighted tail reduction at `target` — probability,
    /// relative error, ESS and estimator variance in one pass, reduced
    /// in trial order (the evaluator's exact arithmetic).
    pub fn tail_stats(&self, target: f64) -> WeightedTailStats {
        let mut stats = WeightedTailStats::new();
        for &(rate, weight) in &self.samples {
            stats.push(weight, rate < target);
        }
        stats
    }

    /// `P[optimal sum rate < target]`, importance-weighted.
    ///
    /// `None` means **unresolved**: no weighted trial fell below a
    /// positive target (see
    /// [`crate::outage::OutageProfile::outage_probability`] for the
    /// plain-MC analogue of this contract). A non-positive target
    /// resolves to `Some(0.0)` exactly.
    pub fn outage_probability(&self, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        self.tail_stats(target).probability()
    }

    /// Estimated relative standard error `se(p̂)/p̂` of the weighted
    /// outage probability at `target`; `None` when unresolved.
    pub fn relative_error(&self, target: f64) -> Option<f64> {
        self.tail_stats(target).relative_error()
    }

    /// Kish effective sample size `(Σw)²/Σw²` of the weight stream —
    /// target-independent; ≈ `trials` at identity tilt, smaller under
    /// aggressive tilting.
    pub fn ess(&self) -> f64 {
        self.tail_stats(f64::NEG_INFINITY).ess()
    }
}

/// Importance-sampled outage probability of operating at multiplexing
/// gain `r` — the deep-tail twin of
/// [`crate::outage::finite_snr_outage`]: same finite-SNR DMT target
/// `r·log2(1 + SNR_ref)`, same seeding convention, but fades drawn
/// through `tilt` and hits weighted by the likelihood ratio.
///
/// Returns `None` when even the tilted estimate is unresolved (zero
/// weighted hits).
///
/// # Panics
///
/// Panics if `r` is non-positive/non-finite, the network's reference SNR
/// is zero, or `fading` does not support tilting.
pub fn deep_finite_snr_outage(
    net: &GaussianNetwork,
    protocol: Protocol,
    fading: FadingModel,
    tilt: [PowerTilt; 3],
    cfg: &McConfig,
    r: f64,
) -> Option<f64> {
    assert!(
        r.is_finite() && r > 0.0,
        "multiplexing gain must be finite and positive, got {r}"
    );
    let snr = net.reference_snr();
    assert!(
        snr > 0.0,
        "finite-SNR outage needs a positive reference SNR"
    );
    let target = r * log2_1p(snr);
    WeightedOutageProfile::estimate(net, protocol, fading, tilt, cfg).outage_probability(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ergodic::sum_rate_samples;
    use bcc_channel::ChannelState;
    use bcc_num::approx_eq;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    #[test]
    fn identity_tilt_reproduces_plain_stream_bitwise() {
        let net = fig4_net(10.0);
        let cfg = McConfig::new(80, 0xD33B_5100);
        let plain = sum_rate_samples(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg);
        let deep = deep_sum_rate_samples(
            &net,
            Protocol::Tdbc,
            FadingModel::Rayleigh,
            [PowerTilt::NONE; 3],
            &cfg,
        );
        assert_eq!(deep.len(), plain.len());
        for (trial, (&(rate, weight), &reference)) in deep.iter().zip(plain.iter()).enumerate() {
            assert_eq!(rate, reference, "trial {trial}: rate drifted");
            assert_eq!(weight, 1.0, "trial {trial}: identity weight must be exact");
        }
    }

    #[test]
    fn tilted_estimate_matches_plain_mc_in_overlap_regime() {
        // At a mid-range target both estimators resolve; the weighted
        // estimate must sit within a 4σ band of the plain one (computed
        // from the IS estimator's own relative error).
        let net = fig4_net(10.0);
        let target = 0.3 * log2_1p(net.reference_snr());
        let tilt = [PowerTilt::toward(0.45); 3];
        let is = WeightedOutageProfile::estimate(
            &net,
            Protocol::Mabc,
            FadingModel::Rayleigh,
            tilt,
            &McConfig::new(6000, 0xD33B_5101),
        );
        let plain = crate::outage::OutageProfile::estimate(
            &net,
            Protocol::Mabc,
            FadingModel::Rayleigh,
            &McConfig::new(6000, 0x0714_0001),
        );
        let p_is = is
            .outage_probability(target)
            .expect("tilted estimate resolves");
        let p_mc = plain
            .outage_probability(target)
            .expect("mid-range target resolves");
        let rel = is.relative_error(target).expect("resolved");
        let band = 4.0 * (p_is * rel).hypot((p_mc * (1.0 - p_mc) / 6000.0).sqrt());
        assert!(
            (p_is - p_mc).abs() <= band,
            "IS {p_is} vs plain {p_mc} (band {band:.2e})"
        );
        // Tilting spreads the weights, so the ESS must drop below the
        // trial count but stay well above the defensive floor.
        assert!(is.ess() < 6000.0 && is.ess() > 600.0, "ess = {}", is.ess());
    }

    #[test]
    fn resolves_deep_tail_plain_mc_cannot_touch() {
        // DT at 55 dB with r = 0.1: outage ~ 1e-5 — invisible to 2000
        // plain trials, resolved by the tilted stream with honest weights.
        let net = fig4_net(55.0);
        let cfg = McConfig::new(2000, 0xD33B_5102);
        let plain = deep_finite_snr_outage(
            &net,
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            [PowerTilt::NONE; 3],
            &cfg,
            0.1,
        );
        assert_eq!(plain, None, "plain MC must report unresolved, not 0");
        let tilted = deep_finite_snr_outage(
            &net,
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            [PowerTilt::toward(1e-4), PowerTilt::NONE, PowerTilt::NONE],
            &cfg,
            0.1,
        )
        .expect("tilted estimate resolves the deep tail");
        assert!(
            tilted > 0.0 && tilted < 1e-3,
            "deep-tail estimate out of range: {tilted}"
        );
    }

    #[test]
    fn non_positive_target_is_exactly_never_in_outage() {
        let p = WeightedOutageProfile::from_samples(vec![(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(p.outage_probability(0.0), Some(0.0));
        assert_eq!(p.outage_probability(-1.0), Some(0.0));
        assert_eq!(p.outage_probability(1.5), Some(0.5));
        assert_eq!(p.outage_probability(0.5), None, "unresolved, not zero");
        assert!(approx_eq(p.ess(), 2.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "IS weight must be finite and non-negative")]
    fn negative_weights_rejected() {
        let _ = WeightedOutageProfile::from_samples(vec![(1.0, -0.5)]);
    }

    #[test]
    #[should_panic(expected = "importance sampling needs a Gamma fade power")]
    fn rician_fading_rejected() {
        let _ = deep_sum_rate_samples(
            &fig4_net(10.0),
            Protocol::Mabc,
            FadingModel::Rician { k: 3.0 },
            [PowerTilt::NONE; 3],
            &McConfig::new(4, 1),
        );
    }
}
