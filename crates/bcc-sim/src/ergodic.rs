//! Ergodic (fading-averaged) rates under quasi-static Rayleigh fading.
//!
//! Each Monte-Carlo trial draws one independent unit-mean fade per link,
//! scales the path-loss gains, re-runs the LP sum-rate optimisation of
//! `bcc-core` on the faded network (full CSI, as the paper assumes), and
//! averages. For direct transmission the result has a closed form —
//! `E[C(P·G_ab·X)]` with `X ~ Exp(1)` — evaluated by Gauss–Laguerre
//! quadrature in `bcc-num`, which pins the whole pipeline down in tests.

use crate::mc::{McConfig, McEstimate};
use bcc_channel::fading::FadingModel;
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::protocol::Protocol;
use bcc_core::scenario::Scenario;
use bcc_num::stats::RunningStats;

/// Ergodic sum-rate estimate of `protocol` over i.i.d. per-link fading.
///
/// The network's gains are treated as the path-loss component; `fading`
/// multiplies each link's power gain by an independent unit-mean draw per
/// trial.
pub fn ergodic_sum_rate(
    net: &GaussianNetwork,
    protocol: Protocol,
    fading: FadingModel,
    cfg: &McConfig,
) -> McEstimate {
    let stats: RunningStats = sum_rate_samples(net, protocol, fading, cfg)
        .into_iter()
        .collect();
    McEstimate { stats }
}

/// Per-trial optimal sum rates (the raw sample, for outage analysis).
///
/// Thin front over the batch evaluator: a single-point
/// [`Scenario`] with this fading spec draws the *same* fade streams
/// (`trial_stream(seed, trial)`), so there is exactly one fade-drawing
/// code path in the workspace.
pub fn sum_rate_samples(
    net: &GaussianNetwork,
    protocol: Protocol,
    fading: FadingModel,
    cfg: &McConfig,
) -> Vec<f64> {
    let out = Scenario::at(*net)
        .protocols([protocol])
        .fading(fading, cfg.trials, cfg.seed)
        .build()
        .outage()
        .expect("fading evaluation maps LP failures to rate 0");
    let mut samples = out.into_samples(protocol);
    samples.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;
    use bcc_num::quadrature::ergodic_rayleigh_capacity;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    #[test]
    fn dt_ergodic_matches_gauss_laguerre() {
        // DT sum rate per draw = C(P·Gab·X), X ~ Exp(1); its mean is the
        // closed-form ergodic Rayleigh capacity.
        let net = fig4_net(10.0);
        let cfg = McConfig::new(20_000, 99);
        let est = ergodic_sum_rate(
            &net,
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            &cfg,
        );
        let expected =
            ergodic_rayleigh_capacity(net.power().expect("symmetric network") * net.state().gab());
        let ci = est.confidence(0.999);
        assert!(
            ci.contains(expected),
            "MC {} vs quadrature {expected} (CI {ci})",
            est.mean()
        );
    }

    #[test]
    fn no_fading_reduces_to_deterministic_optimum() {
        let net = fig4_net(5.0);
        let cfg = McConfig::new(10, 1);
        for proto in Protocol::ALL {
            let est = ergodic_sum_rate(&net, proto, FadingModel::None, &cfg);
            let exact = net.max_sum_rate(proto).unwrap().sum_rate;
            assert!(
                (est.mean() - exact).abs() < 1e-9,
                "{proto}: {} vs {exact}",
                est.mean()
            );
            assert!(est.stats.population_variance() < 1e-18);
        }
    }

    #[test]
    fn hbc_ergodic_dominates_components() {
        let net = fig4_net(10.0);
        let cfg = McConfig::new(400, 5);
        let hbc = ergodic_sum_rate(&net, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
        let mabc = ergodic_sum_rate(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg);
        let tdbc = ergodic_sum_rate(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg);
        // Same seeds → same fades → trial-wise dominance, hence mean-wise.
        assert!(hbc.mean() >= mabc.mean() - 1e-9);
        assert!(hbc.mean() >= tdbc.mean() - 1e-9);
    }

    #[test]
    fn ergodic_rate_below_no_fading_rate_jensen() {
        // C is concave in the gains and the fade is unit-mean, so fading
        // cannot help the ergodic DT rate (Jensen).
        let net = fig4_net(10.0);
        let cfg = McConfig::new(20_000, 17);
        let faded = ergodic_sum_rate(
            &net,
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            &cfg,
        );
        let unfaded = net
            .max_sum_rate(Protocol::DirectTransmission)
            .unwrap()
            .sum_rate;
        assert!(faded.mean() < unfaded);
    }

    #[test]
    fn samples_match_run_statistics() {
        let net = fig4_net(0.0);
        let cfg = McConfig::new(200, 3);
        let samples = sum_rate_samples(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg);
        let est = ergodic_sum_rate(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - est.mean()).abs() < 1e-12);
        assert_eq!(samples.len(), 200);
    }
}
