//! A minimal discrete-event simulation engine.
//!
//! Time is `f64` slots; events are user-defined payloads ordered by
//! (time, insertion sequence) so simultaneous events fire in FIFO order —
//! determinism matters because every experiment must be reproducible from
//! its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then(other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
///
/// ```
/// use bcc_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time (causality).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 7.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn causality_enforced() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
