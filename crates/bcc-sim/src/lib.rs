//! Simulation substrate: Monte-Carlo fading studies, a discrete-event
//! packet-level simulator, and an end-to-end symbol-level protocol run.
//!
//! The paper's bounds are information-theoretic; this crate validates them
//! *operationally* from three directions:
//!
//! * [`ergodic`] / [`outage`] — quasi-static Rayleigh fading studies: per
//!   fading draw the LP machinery of `bcc-core` gives the optimal sum
//!   rate, and Monte Carlo over draws yields ergodic rates and outage
//!   probabilities (the quantities a cellular operator would quote).
//!   Cross-checked against Gauss–Laguerre quadrature where a closed form
//!   exists.
//! * [`packet`] (on the [`event`] engine) — an *implementable* ARQ scheme
//!   on packet-erasure links: the relay XORs packet pairs exactly as in
//!   the paper's protocols. Measured throughput must stay below (and
//!   approach) the corresponding LP bound with erasure capacities, and
//!   the XOR relay must beat plain forwarding — network coding's one-third
//!   slot saving.
//! * [`symbol`] — a literal MABC run at the physical layer: Hamming-coded
//!   BPSK, a joint-ML multiple-access decoder at the relay, XOR
//!   re-encoding, and side-information stripping at the terminals.
//! * [`binning_sim`] — Theorem 3's random binning made operational: the
//!   relay sends bin indices and the terminal disambiguates with its
//!   overheard side information (Slepian–Wolf-style threshold exposed).
//! * [`deep`] — the importance-sampled deep-outage twin of
//!   [`bcc_core::deep`]'s batch engine: tilted fade streams with
//!   likelihood-ratio weights through the serial `McConfig` driver,
//!   bit-identical to a single-cell evaluator run at a shared seed.
//! * [`multipair`] — the `K`-pair outage twin of
//!   [`bcc_core::multipair`]'s batch evaluator: a serial `McConfig`
//!   driver with per-pair fade streams, cross-validated against the
//!   parallel fan-out.
//! * [`city`] — the serial full-matrix twin of [`bcc_core::city`]'s
//!   streamed relay-assignment evaluator: scalar solves in nested-loop
//!   order, cross-validated bitwise against the blocked fan-out.
//! * [`selection`] — relay-selection diversity for the multi-relay
//!   extension ([`bcc_core::selection`]).
//!
//! [`mc`] holds the shared Monte-Carlo driver (seeding, batching,
//! confidence intervals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning_sim;
pub mod city;
pub mod deep;
pub mod ergodic;
pub mod event;
pub mod mc;
pub mod multipair;
pub mod outage;
pub mod packet;
pub mod selection;
pub mod symbol;

pub use mc::McConfig;
