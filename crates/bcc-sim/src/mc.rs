//! Shared Monte-Carlo driver.
//!
//! Every stochastic experiment in the workspace runs through
//! [`McConfig::run`] or its parallel twin [`McConfig::run_par`], which fix
//! seeding policy (one master seed, one deterministic child stream per
//! trial) so results are reproducible and trials are independent
//! regardless of how much randomness each consumes. Because each trial
//! owns its seed stream, fanning trials across worker threads
//! ([`bcc_num::par`]) is *bit-identical* to the serial loop — `run_par`
//! only requires the trial closure to be `Fn + Sync` instead of `FnMut`.

use bcc_num::par;
use bcc_num::stats::{ConfidenceInterval, RunningStats};
use rand::rngs::StdRng;

/// Configuration for a Monte-Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; child trial `i` uses a stream derived from
    /// `(seed, i)`.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            trials: 10_000,
            seed: 0xBCC0_0001,
        }
    }
}

/// The outcome of a Monte-Carlo estimate.
#[derive(Debug, Clone)]
pub struct McEstimate {
    /// Accumulated statistics of the per-trial values.
    pub stats: RunningStats,
}

impl McEstimate {
    /// Point estimate (sample mean).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Normal-approximation confidence interval at `level`.
    pub fn confidence(&self, level: f64) -> ConfidenceInterval {
        self.stats.confidence_interval(level)
    }
}

impl McConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        McConfig { trials, seed }
    }

    /// Runs `trial(rng, i)` for each trial index with its own deterministic
    /// RNG stream and aggregates the returned values, serially on the
    /// calling thread. Use when the closure mutates captured state;
    /// stateless closures should prefer [`McConfig::run_par`].
    pub fn run<F: FnMut(&mut StdRng, usize) -> f64>(&self, mut trial: F) -> McEstimate {
        let mut stats = RunningStats::new();
        for i in 0..self.trials {
            let mut rng = self.trial_rng(i);
            stats.push(trial(&mut rng, i));
        }
        McEstimate { stats }
    }

    /// [`McConfig::run`] with trials fanned across the worker pool
    /// (`BCC_THREADS` / available parallelism — see
    /// [`bcc_num::par::thread_count`]).
    ///
    /// Bit-identical to `run`: trial `i`'s value depends only on its own
    /// seed stream, and the estimate accumulates the values in trial
    /// order whichever worker produced them.
    ///
    /// A panicking trial is contained to itself ([`par::try_par_map_range`]
    /// catches per item): the remaining trials still run, and the panic
    /// that reaches the caller is the **lowest-index** one — exactly what
    /// the serial loop would have hit first — at every worker count.
    pub fn run_par<F>(&self, trial: F) -> McEstimate
    where
        F: Fn(&mut StdRng, usize) -> f64 + Sync,
    {
        let stats: RunningStats = self.samples_par(trial).into_iter().collect();
        McEstimate { stats }
    }

    /// The raw per-trial values of [`McConfig::run_par`], in trial order
    /// (for outage quantiles and other sample-level analyses).
    pub fn samples_par<F>(&self, trial: F) -> Vec<f64>
    where
        F: Fn(&mut StdRng, usize) -> f64 + Sync,
    {
        self.samples_par_with(|| (), |(), rng, i| trial(rng, i))
    }

    /// [`McConfig::run_par`] with **per-worker scratch state** built by
    /// `init` (an LP [`SolveCtx`](bcc_core::kernel::SolveCtx), a decoder
    /// buffer, …) handed to every trial that worker runs — the
    /// zero-allocation-per-trial form of the Monte-Carlo fan-out. Trial
    /// values must not depend on the state's history (the state is scratch
    /// memory, not an accumulator), which keeps results bit-identical at
    /// every worker count.
    pub fn run_par_with<S, I, F>(&self, init: I, trial: F) -> McEstimate
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &mut StdRng, usize) -> f64 + Sync,
    {
        let stats: RunningStats = self.samples_par_with(init, trial).into_iter().collect();
        McEstimate { stats }
    }

    /// The raw per-trial values of [`McConfig::run_par_with`], in trial
    /// order.
    pub fn samples_par_with<S, I, F>(&self, init: I, trial: F) -> Vec<f64>
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &mut StdRng, usize) -> f64 + Sync,
    {
        par::par_map_range(par::thread_count(), self.trials, init, |state, i| {
            let mut rng = self.trial_rng(i);
            trial(state, &mut rng, i)
        })
    }

    /// The deterministic RNG stream of trial `i` — the workspace-wide
    /// seeding policy shared with the `Scenario` evaluator, so a
    /// single-point scenario and a classic `McConfig` run see identical
    /// fade streams.
    pub fn trial_rng(&self, i: usize) -> StdRng {
        bcc_core::scenario::trial_stream(self.seed, i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_across_runs() {
        let cfg = McConfig::new(500, 42);
        let a = cfg.run(|rng, _| rng.gen::<f64>());
        let b = cfg.run(|rng, _| rng.gen::<f64>());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn different_seeds_differ() {
        let a = McConfig::new(500, 1).run(|rng, _| rng.gen::<f64>());
        let b = McConfig::new(500, 2).run(|rng, _| rng.gen::<f64>());
        assert_ne!(a.mean(), b.mean());
    }

    #[test]
    fn trial_streams_are_independent_of_consumption() {
        // Trial i's stream must not depend on how much randomness trial
        // i-1 consumed.
        let cfg = McConfig::new(3, 7);
        let mut heavy = Vec::new();
        cfg.run(|rng, i| {
            if i == 0 {
                for _ in 0..1000 {
                    let _: f64 = rng.gen();
                }
            }
            let v = rng.gen::<f64>();
            heavy.push(v);
            v
        });
        let mut light = Vec::new();
        cfg.run(|rng, _| {
            let v = rng.gen::<f64>();
            light.push(v);
            v
        });
        assert_eq!(heavy[1..], light[1..], "later trials must be unaffected");
    }

    #[test]
    fn run_par_matches_run_bit_for_bit() {
        let cfg = McConfig::new(2000, 42);
        let serial = cfg.run(|rng, i| rng.gen::<f64>() + i as f64);
        let par = cfg.run_par(|rng, i| rng.gen::<f64>() + i as f64);
        assert_eq!(serial.mean(), par.mean());
        assert_eq!(
            serial.stats.population_variance(),
            par.stats.population_variance()
        );
    }

    #[test]
    fn samples_par_in_trial_order() {
        let cfg = McConfig::new(500, 9);
        let samples = cfg.samples_par(|_, i| i as f64);
        assert_eq!(samples, (0..500).map(|i| i as f64).collect::<Vec<_>>());
        // And the RNG-backed path reproduces the serial stream per trial.
        let par = cfg.samples_par(|rng, _| rng.gen::<f64>());
        let mut serial = Vec::new();
        cfg.run(|rng, _| {
            let v = rng.gen::<f64>();
            serial.push(v);
            v
        });
        assert_eq!(par, serial);
    }

    #[test]
    fn uniform_mean_is_half() {
        let est = McConfig::new(200_000, 3).run(|rng, _| rng.gen::<f64>());
        assert!((est.mean() - 0.5).abs() < 0.005);
        assert!(est.confidence(0.99).contains(0.5));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = McConfig::new(0, 1);
    }

    #[test]
    fn poisoned_trials_surface_the_lowest_index_panic() {
        // Two trials panic; the one the serial loop would hit first is
        // the one the caller observes, and the fan-out neither aborts
        // the process nor loses the panic.
        let cfg = McConfig::new(2_000, 11);
        let caught = std::panic::catch_unwind(|| {
            cfg.run_par(|_, i| {
                assert!(i != 1205, "trial 1205 poisoned");
                assert!(i != 407, "trial 407 poisoned");
                i as f64
            })
        });
        let payload = caught.expect_err("the poisoned trials must unwind");
        assert_eq!(
            bcc_num::par::describe_panic(payload.as_ref()),
            "trial 407 poisoned"
        );
    }
}
