//! Multi-pair outage under quasi-static fading — the **simulator-side
//! twin** of the batch evaluator's
//! [`MultiPairEvaluator::outage`](bcc_core::multipair::MultiPairEvaluator::outage).
//!
//! Like the single-pair [`crate::outage`] module, this drives the study
//! through the classic [`McConfig`] convention: a serial trial-major
//! loop, one deterministic child stream per `(pair, trial)`, one
//! [`SolveCtx`] reused across every faded solve. The evaluator instead
//! fans a flattened `point × trial` grid across worker threads — a
//! genuinely different driver over the same per-trial arithmetic, which
//! is exactly what the cross-validation suite wants: under *independent*
//! seeds the two paths must agree statistically (4σ bands), and under a
//! *shared* seed on a single-point grid they must agree **bit for bit**
//! (same fade-drawing order per stream, same aggregation arithmetic via
//! [`Schedule::aggregate_sum_rates`]).

use bcc_core::kernel::SolveCtx;
use bcc_core::multipair::{PairSet, Schedule};
use bcc_core::protocol::Protocol;
use bcc_core::scenario::{mix_seed, trial_stream};
use bcc_num::stats::Ecdf;

use crate::mc::McConfig;
use bcc_channel::fading::FadingModel;

/// Per-pair, per-trial optimal sum rates of `protocol` over the pair
/// set under i.i.d. per-link fading — returned pair-major
/// (`samples[pair][trial]`).
///
/// Pair `k` draws from its own decorrelated stream of the master seed
/// (`mix_seed(seed, k)`; a lone pair uses the seed itself, matching the
/// classic single-pair stream), so identical pairs still fade
/// independently while every protocol shares a trial's fades. A
/// deep-fade LP failure counts as rate 0.
pub fn multi_pair_samples(
    pairs: &PairSet,
    protocol: Protocol,
    fading: FadingModel,
    cfg: &McConfig,
) -> Vec<Vec<f64>> {
    let k = pairs.len();
    let mut ctx = SolveCtx::new();
    let mut samples = vec![Vec::with_capacity(cfg.trials); k];
    for trial in 0..cfg.trials {
        for (pair, net) in pairs.iter().enumerate() {
            let stream_seed = if k == 1 {
                cfg.seed
            } else {
                mix_seed(cfg.seed, pair as u64)
            };
            let mut rng = trial_stream(stream_seed, trial as u64);
            let faded = net.with_state(net.state().faded(
                fading.sample_power(&mut rng),
                fading.sample_power(&mut rng),
                fading.sample_power(&mut rng),
            ));
            samples[pair].push(
                ctx.solve_one(&faded, bcc_core::SolveRequest::sum_rate(protocol))
                    .map(|o| o.value)
                    .unwrap_or(0.0),
            );
        }
    }
    samples
}

/// Monte-Carlo sum-rate statistics of one protocol over a [`PairSet`]
/// under quasi-static fading, queryable per [`Schedule`].
///
/// Both schedules' empirical distributions are built once at
/// construction (the [`crate::outage::OutageProfile`] discipline), so
/// probability/quantile queries are single ECDF lookups.
#[derive(Debug, Clone)]
pub struct MultiPairProfile {
    samples: Vec<Vec<f64>>,
    time_share: Ecdf,
    joint: Ecdf,
}

impl MultiPairProfile {
    /// Estimates the per-pair sum-rate samples of `protocol` under
    /// `fading` (see [`multi_pair_samples`]).
    pub fn estimate(
        pairs: &PairSet,
        protocol: Protocol,
        fading: FadingModel,
        cfg: &McConfig,
    ) -> Self {
        MultiPairProfile::from_samples(multi_pair_samples(pairs, protocol, fading, cfg))
    }

    /// Builds a profile from explicit pair-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, a pair has no trials, or the trial
    /// counts disagree across pairs.
    pub fn from_samples(samples: Vec<Vec<f64>>) -> Self {
        assert!(!samples.is_empty(), "need at least one pair");
        let trials = samples[0].len();
        assert!(trials > 0, "need at least one trial");
        for s in &samples {
            assert_eq!(s.len(), trials, "trial counts must agree across pairs");
        }
        let aggregate = |schedule: Schedule| {
            let mut per_pair = vec![0.0; samples.len()];
            Ecdf::new(
                (0..trials)
                    .map(|t| {
                        for (pair, s) in samples.iter().enumerate() {
                            per_pair[pair] = s[t];
                        }
                        schedule.aggregate_sum_rates(&per_pair)
                    })
                    .collect(),
            )
        };
        MultiPairProfile {
            time_share: aggregate(Schedule::TimeShare),
            joint: aggregate(Schedule::Joint),
            samples,
        }
    }

    /// Number of pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.samples.len()
    }

    /// Number of Monte-Carlo trials behind the profile.
    pub fn trials(&self) -> usize {
        self.samples[0].len()
    }

    /// The raw per-trial sum rates of pair `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pair_samples(&self, k: usize) -> &[f64] {
        &self.samples[k]
    }

    /// Per-trial network sum rates under `schedule`: the equal-share
    /// mean (`TimeShare`) or the momentarily best pair's rate (`Joint`)
    /// of each trial's per-pair optima.
    pub fn schedule_samples(&self, schedule: Schedule) -> Vec<f64> {
        let k = self.num_pairs();
        let mut per_pair = vec![0.0; k];
        (0..self.trials())
            .map(|t| {
                for (pair, s) in self.samples.iter().enumerate() {
                    per_pair[pair] = s[t];
                }
                schedule.aggregate_sum_rates(&per_pair)
            })
            .collect()
    }

    /// The empirical schedule sum-rate distribution (built once at
    /// construction; query any number of quantiles/probabilities).
    pub fn profile(&self, schedule: Schedule) -> &Ecdf {
        match schedule {
            Schedule::TimeShare => &self.time_share,
            Schedule::Joint => &self.joint,
        }
    }

    /// `P[schedule sum rate < target]`.
    ///
    /// `None` means **unresolved** (no trial below a positive target —
    /// the estimate sits under the `1/trials` floor); a non-positive
    /// target resolves to `Some(0.0)` exactly, as in
    /// [`crate::outage::OutageProfile::outage_probability`].
    pub fn outage_probability(&self, schedule: Schedule, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        // Strictly-less via the left limit of the ECDF, as in
        // [`crate::outage::OutageProfile`].
        let p = self.profile(schedule).eval(target - 1e-12);
        if p == 0.0 {
            None
        } else {
            Some(p)
        }
    }

    /// The ε-outage schedule sum rate: the largest rate supported in all
    /// but an `eps` fraction of fades, or `None` when `eps` sits below
    /// the `1/trials` resolution floor.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    pub fn outage_rate(&self, schedule: Schedule, eps: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&eps),
            "eps must lie in [0, 1], got {eps}"
        );
        let profile = self.profile(schedule);
        if eps < 1.0 / profile.len() as f64 {
            None
        } else {
            Some(profile.quantile(eps))
        }
    }

    /// Ergodic (fading-averaged) schedule sum rate, summed in trial
    /// order (matching the evaluator twin's aggregation order).
    pub fn ergodic(&self, schedule: Schedule) -> f64 {
        let s = self.schedule_samples(schedule);
        s.iter().sum::<f64>() / s.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;
    use bcc_core::gaussian::GaussianNetwork;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    fn two_pairs() -> PairSet {
        PairSet::new(vec![
            fig4_net(10.0),
            GaussianNetwork::new(10.0, ChannelState::new(1.0, 0.3, 0.3)),
        ])
    }

    #[test]
    fn single_pair_reduces_to_classic_stream() {
        // K = 1 must reproduce the classic single-pair sample stream of
        // `ergodic::sum_rate_samples` bit for bit (same seeding rule,
        // same fade-drawing order).
        let net = fig4_net(10.0);
        let cfg = McConfig::new(60, 0xFEED);
        let classic =
            crate::ergodic::sum_rate_samples(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg);
        let multi = multi_pair_samples(
            &PairSet::new(vec![net]),
            Protocol::Tdbc,
            FadingModel::Rayleigh,
            &cfg,
        );
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0], classic);
    }

    #[test]
    fn matches_evaluator_bitwise_at_shared_seed() {
        // Single-point grid, shared seed: the serial McConfig driver and
        // the evaluator's parallel fan-out draw the same streams, so
        // they must agree bit for bit — a genuine two-implementation
        // differential check.
        use bcc_core::scenario::Scenario;
        let pairs = two_pairs();
        let cfg = McConfig::new(50, 0xC0FFEE);
        let eval = Scenario::pairs("network", [(0.0, pairs.clone())])
            .rayleigh(cfg.trials, cfg.seed)
            .build()
            .outage()
            .unwrap();
        for proto in [Protocol::Mabc, Protocol::Hbc] {
            let sim = multi_pair_samples(&pairs, proto, FadingModel::Rayleigh, &cfg);
            for (pair, samples) in sim.iter().enumerate() {
                assert_eq!(samples, eval.samples(proto, 0, pair), "{proto} pair {pair}");
            }
        }
    }

    #[test]
    fn profile_aggregates_match_hand_computation() {
        let p = MultiPairProfile::from_samples(vec![vec![1.0, 3.0], vec![2.0, 0.5]]);
        assert_eq!(p.num_pairs(), 2);
        assert_eq!(p.trials(), 2);
        assert_eq!(p.schedule_samples(Schedule::TimeShare), vec![1.5, 1.75]);
        assert_eq!(p.schedule_samples(Schedule::Joint), vec![2.0, 3.0]);
        assert_eq!(p.ergodic(Schedule::Joint), 2.5);
        assert_eq!(p.outage_probability(Schedule::Joint, 2.5), Some(0.5));
        // eps = 0 sits below the 1/trials floor — unresolved by contract.
        assert_eq!(p.outage_rate(Schedule::Joint, 0.0), None);
        assert!(
            p.outage_rate(Schedule::Joint, 0.5).unwrap()
                <= p.outage_rate(Schedule::Joint, 1.0).unwrap()
        );
    }

    #[test]
    fn joint_outage_never_exceeds_time_share_outage() {
        let pairs = two_pairs();
        let cfg = McConfig::new(300, 11);
        let p = MultiPairProfile::estimate(&pairs, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
        for target in [0.5, 1.0, 2.0] {
            assert!(
                p.outage_probability(Schedule::Joint, target).unwrap_or(0.0)
                    <= p.outage_probability(Schedule::TimeShare, target)
                        .unwrap_or(0.0)
                        + 1e-12,
                "target {target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "trial counts must agree")]
    fn ragged_samples_rejected() {
        let _ = MultiPairProfile::from_samples(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
