//! Outage analysis under quasi-static fading.
//!
//! In a quasi-static fade the channel is constant over a protocol block;
//! a target sum rate `R` is in **outage** when the realised channel cannot
//! support it even with optimal time allocation. This module estimates
//! outage probabilities and ε-outage rates (the largest rate whose outage
//! probability stays below ε) from the Monte-Carlo samples produced by
//! [`crate::ergodic`].

use crate::ergodic::sum_rate_samples;
use crate::mc::McConfig;
use bcc_channel::fading::FadingModel;
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::protocol::Protocol;
use bcc_num::special::log2_1p;
use bcc_num::stats::Ecdf;

/// Outage statistics of one protocol at one network.
#[derive(Debug, Clone)]
pub struct OutageProfile {
    ecdf: Ecdf,
}

impl OutageProfile {
    /// Estimates the sum-rate distribution of `protocol` under `fading`.
    pub fn estimate(
        net: &GaussianNetwork,
        protocol: Protocol,
        fading: FadingModel,
        cfg: &McConfig,
    ) -> Self {
        OutageProfile {
            ecdf: Ecdf::new(sum_rate_samples(net, protocol, fading, cfg)),
        }
    }

    /// Builds a profile from explicit sum-rate samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` contains NaN (propagated from [`Ecdf::new`]).
    pub fn from_samples(samples: Vec<f64>) -> Self {
        OutageProfile {
            ecdf: Ecdf::new(samples),
        }
    }

    /// `P[optimal sum rate < target]` — the outage probability of
    /// operating at `target` bits/use.
    ///
    /// Returns `None` when the estimate is **unresolved**: no sample fell
    /// below a positive target, so all Monte-Carlo can certify is
    /// `p < 1/samples` — reporting `0.0` there would silently extrapolate
    /// past the estimator's resolution floor. Use the importance-sampled
    /// deep-outage path for probabilities below that floor.
    /// A non-positive target is exactly never in outage (rates are
    /// non-negative), so it resolves to `Some(0.0)`.
    pub fn outage_probability(&self, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        // Strictly-less via the left limit of the ECDF: use target minus an
        // epsilon-width that is negligible at rate scales.
        let p = self.ecdf.eval(target - 1e-12);
        if p == 0.0 {
            None
        } else {
            Some(p)
        }
    }

    /// The ε-outage sum rate: the largest rate supported in all but an
    /// `eps` fraction of fades (the ECDF's `eps`-quantile).
    ///
    /// Returns `None` when `eps` sits below the Monte-Carlo resolution
    /// floor `1/samples` — the empirical quantile there is just the sample
    /// minimum, which says nothing about the true `eps`-outage rate.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    pub fn outage_rate(&self, eps: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&eps),
            "eps must lie in [0, 1], got {eps}"
        );
        if eps < 1.0 / self.ecdf.len() as f64 {
            None
        } else {
            Some(self.ecdf.quantile(eps))
        }
    }

    /// Outage probabilities at a batch of targets (one ECDF lookup each —
    /// build the profile once, sweep the rate axis for free). `None`
    /// entries are unresolved (below the `1/samples` floor).
    pub fn outage_curve(&self, targets: &[f64]) -> Vec<Option<f64>> {
        targets
            .iter()
            .map(|&t| self.outage_probability(t))
            .collect()
    }

    /// Number of Monte-Carlo samples behind the profile.
    pub fn samples(&self) -> usize {
        self.ecdf.len()
    }
}

/// Monte-Carlo outage probability of operating at multiplexing gain `r`:
/// the fraction of fades whose optimal sum rate falls short of the
/// finite-SNR DMT target `r·log2(1 + SNR_ref)`, with `SNR_ref` the
/// network's [`reference SNR`](GaussianNetwork::reference_snr).
///
/// This is the **simulator-side twin** of the batch evaluator's
/// `Evaluator::dmt` outage estimate: same target convention, same
/// per-trial fade streams for a given seed, but driven through the
/// classic `McConfig` path — the cross-validation suite holds the two
/// against each other under *different* seeds to check statistical
/// agreement.
///
/// Returns `None` when the probability is unresolved (no trial fell below
/// the target — see [`OutageProfile::outage_probability`]).
///
/// # Panics
///
/// Panics if `r` is non-positive/non-finite or the network's reference
/// SNR is zero.
pub fn finite_snr_outage(
    net: &GaussianNetwork,
    protocol: Protocol,
    fading: FadingModel,
    cfg: &McConfig,
    r: f64,
) -> Option<f64> {
    assert!(
        r.is_finite() && r > 0.0,
        "multiplexing gain must be finite and positive, got {r}"
    );
    let snr = net.reference_snr();
    assert!(
        snr > 0.0,
        "finite-SNR outage needs a positive reference SNR"
    );
    let target = r * log2_1p(snr);
    OutageProfile::estimate(net, protocol, fading, cfg).outage_probability(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    fn profile(proto: Protocol) -> OutageProfile {
        OutageProfile::estimate(
            &fig4_net(10.0),
            proto,
            FadingModel::Rayleigh,
            &McConfig::new(4000, 21),
        )
    }

    #[test]
    fn outage_probability_is_monotone_in_target() {
        let p = profile(Protocol::Mabc);
        let p1 = p.outage_probability(0.5).unwrap_or(0.0);
        let p2 = p.outage_probability(1.5).unwrap_or(0.0);
        let p3 = p.outage_probability(3.0).unwrap_or(0.0);
        assert!(p1 <= p2 && p2 <= p3);
        assert_eq!(
            p.outage_probability(0.0),
            Some(0.0),
            "rate 0 never in outage — resolved exactly"
        );
        assert_eq!(p.outage_probability(1e9), Some(1.0));
    }

    #[test]
    fn outage_rate_inverts_outage_probability() {
        let p = profile(Protocol::Tdbc);
        for eps in [0.05, 0.1, 0.5] {
            let r = p.outage_rate(eps).expect("eps above the resolution floor");
            // At the eps-quantile rate, outage prob is ~eps (within the
            // empirical resolution).
            let prob = p.outage_probability(r).expect("resolved at quantile");
            assert!(
                (prob - eps).abs() <= 0.02,
                "eps={eps}: outage({r}) = {prob}"
            );
        }
    }

    #[test]
    fn hbc_outage_rate_dominates() {
        // Same MC seeds → same fades → HBC's per-trial optimum dominates,
        // so every quantile dominates too.
        let hbc = profile(Protocol::Hbc);
        let mabc = profile(Protocol::Mabc);
        let tdbc = profile(Protocol::Tdbc);
        for eps in [0.05, 0.25, 0.5, 0.9] {
            let h = hbc.outage_rate(eps).unwrap();
            assert!(h >= mabc.outage_rate(eps).unwrap() - 1e-9, "eps={eps}");
            assert!(h >= tdbc.outage_rate(eps).unwrap() - 1e-9, "eps={eps}");
        }
    }

    #[test]
    fn no_fading_profile_is_degenerate() {
        let net = fig4_net(10.0);
        let p = OutageProfile::estimate(
            &net,
            Protocol::Mabc,
            FadingModel::None,
            &McConfig::new(50, 1),
        );
        let exact = net.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        // Below the deterministic rate no trial is in outage: 50 trials
        // can only certify p < 1/50, so the estimate is unresolved rather
        // than a silently extrapolated 0. Above it, every trial fails.
        assert_eq!(p.outage_probability(exact - 1e-6), None);
        assert_eq!(p.outage_probability(exact + 1e-6), Some(1.0));
    }

    #[test]
    fn outage_rate_below_resolution_floor_is_unresolved() {
        let p = OutageProfile::from_samples((0..100).map(f64::from).collect());
        // 100 samples resolve eps >= 1/100 only.
        assert_eq!(p.outage_rate(0.005), None);
        assert!(p.outage_rate(0.01).is_some());
        assert_eq!(p.outage_rate(0.0), None, "eps = 0 is never certifiable");
    }

    #[test]
    fn finite_snr_outage_monotone_in_gain() {
        let net = fig4_net(10.0);
        let cfg = McConfig::new(1500, 33);
        let lo = finite_snr_outage(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg, 0.1)
            .unwrap_or(0.0);
        let hi = finite_snr_outage(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg, 0.6)
            .expect("mid-range target resolves");
        assert!(lo <= hi, "higher multiplexing gain cannot fade out less");
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn finite_snr_outage_respects_fading_model() {
        // Nakagami m=4 fades far less than Rayleigh: outage at a mid-range
        // target must drop.
        let net = fig4_net(5.0);
        let cfg = McConfig::new(1500, 8);
        let ray = finite_snr_outage(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg, 0.5)
            .expect("Rayleigh outage resolves at r = 0.5");
        let nak = finite_snr_outage(
            &net,
            Protocol::Tdbc,
            FadingModel::Nakagami { m: 4.0 },
            &cfg,
            0.5,
        )
        .expect("Nakagami outage resolves at r = 0.5");
        assert!(
            nak < ray,
            "Nakagami m=4 outage {nak} should be below Rayleigh {ray}"
        );
    }

    #[test]
    fn outage_curve_matches_pointwise_probabilities() {
        let p = OutageProfile::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            p.outage_curve(&[0.5, 2.5, 9.0]),
            vec![None, Some(0.5), Some(1.0)]
        );
    }

    #[test]
    fn from_samples_roundtrip() {
        let p = OutageProfile::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.samples(), 4);
        assert_eq!(p.outage_probability(2.5), Some(0.5));
        assert_eq!(p.outage_rate(0.5), Some(3.0));
    }
}
