//! Packet-level simulation of the relaying protocols on erasure links.
//!
//! The bounds machinery in `bcc-core` is channel-agnostic: a rate
//! constraint only needs per-phase *link capacities*. On a packet-erasure
//! link with per-slot success probability `q`, the capacity is exactly `q`
//! packets per slot — so the same LP that evaluates the Gaussian bounds
//! evaluates erasure-network bounds, and an **implementable ARQ scheme**
//! can be simulated against them slot by slot.
//!
//! The scheme mirrors the paper's protocols literally (with ideal
//! feedback/ACKs):
//!
//! * **MABC-style XOR relaying** — terminals deliver their packets to the
//!   relay (uplink slots); whenever the relay holds one undelivered packet
//!   from *each* direction it broadcasts their XOR, and each terminal
//!   strips its own packet (side information in the XOR sense). A
//!   broadcast slot is consumed once, but must succeed on **both**
//!   downlinks (retransmitted until it has).
//! * **Naive forwarding** — the four-phase baseline of the paper's Fig. 1:
//!   the relay forwards each direction separately.
//!
//! Measured throughput (delivered packet pairs per slot) must stay below
//! the LP sum-rate bound built from the same `q` values, and XOR relaying
//! must beat forwarding — the network-coding gain that motivates the whole
//! paper.

use crate::event::EventQueue;
use bcc_core::constraint::{ConstraintSet, RateConstraint};
use bcc_core::optimizer;
use rand::Rng;

/// Per-slot success probabilities of the three links (the erasure-channel
/// analogue of the Gaussian `C(P·G)` coefficients).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErasureNetwork {
    /// Terminal-to-terminal success probability (unused by MABC schemes).
    pub q_ab: f64,
    /// `a`–relay success probability.
    pub q_ar: f64,
    /// `b`–relay success probability.
    pub q_br: f64,
}

impl ErasureNetwork {
    /// Validates the probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(q_ab: f64, q_ar: f64, q_br: f64) -> Self {
        for (n, q) in [("q_ab", q_ab), ("q_ar", q_ar), ("q_br", q_br)] {
            assert!((0.0..=1.0).contains(&q), "{n} out of range: {q}");
        }
        ErasureNetwork { q_ab, q_ar, q_br }
    }

    /// The MABC-analogue LP bound on sum throughput (packet pairs per
    /// slot): uplink phase constraints with per-link capacities `q` and a
    /// broadcast phase where a slot serves both directions but is limited
    /// by each downlink's success probability. The relay's MAC phase is
    /// modelled as orthogonal uplink slots (one transmitter per slot), so
    /// the sum constraint is `Δ₁·1` with per-user shares — the appropriate
    /// analogue of the paper's MAC cut for collision-free slotted uplinks.
    pub fn xor_relay_bound(&self) -> f64 {
        // Variables (Ra, Rb, Δ1_a, Δ1_b, Δ2): we encode the split of the
        // uplink phase as two sub-phases to stay within the linear
        // framework: 3 "phases" total.
        let mut set = ConstraintSet::new(3, "erasure XOR relaying bound");
        // Relay receives a's packets during sub-phase 1 at q_ar per slot.
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![self.q_ar, 0.0, 0.0],
            "relay receives from a",
        ));
        // Relay receives b's packets during sub-phase 2 at q_br per slot.
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, self.q_br, 0.0],
            "relay receives from b",
        ));
        // Broadcast phase: a XOR packet reaches b at q_br, a at q_ar; a
        // pair is complete only when both eventually receive it, and a slot
        // carries one XOR packet, so each direction is limited by its own
        // downlink success rate.
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![0.0, 0.0, self.q_br],
            "b receives XOR broadcasts",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, 0.0, self.q_ar],
            "a receives XOR broadcasts",
        ));
        optimizer::max_sum_rate(&set)
            .expect("erasure bound LP is feasible")
            .objective
    }
}

/// Which relaying scheme the packet simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayScheme {
    /// Relay XORs one packet from each direction per broadcast slot.
    XorNetworkCoding,
    /// Relay forwards each direction's packets separately (naive 4-phase).
    PlainForwarding,
    /// XOR relaying where each terminal also *overhears* the other's
    /// uplink through the direct link (success probability `q_ab`) — the
    /// packet-level analogue of TDBC's side information. An overheard
    /// packet no longer needs the relay broadcast for that direction.
    XorWithOverhearing,
}

/// Result of a packet-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSimResult {
    /// Packet pairs fully delivered (one `a→b` plus one `b→a`).
    pub pairs_delivered: usize,
    /// Total slots consumed.
    pub slots: usize,
    /// Sum throughput in packets per slot (`2·pairs/slots`).
    pub sum_throughput: f64,
}

/// Simulates exchanging `pairs` packet pairs through the relay with ideal
/// per-slot ACK feedback, using a deterministic three-stage schedule:
/// uplink `a→r` until delivered, uplink `b→r`, then relay downlink
/// (XOR or per-direction forwarding). Slot outcomes are Bernoulli draws
/// from the link success probabilities.
///
/// The discrete-event queue drives slot occupancy so schemes that overlap
/// work (future extensions) keep a single time base.
///
/// # Panics
///
/// Panics if `pairs == 0` or any link probability is zero (the exchange
/// would never finish).
pub fn simulate_exchange<R: Rng + ?Sized>(
    net: &ErasureNetwork,
    scheme: RelayScheme,
    pairs: usize,
    rng: &mut R,
) -> PacketSimResult {
    assert!(pairs > 0, "need at least one packet pair");
    assert!(
        net.q_ar > 0.0 && net.q_br > 0.0,
        "links to the relay must have positive success probability"
    );
    #[derive(Debug, Clone, Copy)]
    enum Stage {
        UplinkA(usize),
        UplinkB(usize),
        Downlink(usize),
    }
    let mut q = EventQueue::new();
    q.schedule(1.0, Stage::UplinkA(0));
    let mut slots = 0usize;
    let mut delivered = 0usize;
    // For the downlink: per-packet delivery state to each terminal.
    let mut got_a = false; // a has received the current downlink packet
    let mut got_b = false;
    // For forwarding: which direction is being forwarded (false: a→b).
    let mut forwarding_second_leg = false;

    // Overhearing state of the *current* packet pair (TDBC-style side
    // information): has b already heard a's packet, and vice versa?
    let mut b_overheard = false;
    let mut a_overheard = false;

    while let Some((_, stage)) = q.pop() {
        slots += 1;
        match stage {
            Stage::UplinkA(i) => {
                // b listens to a's uplink in the overhearing scheme; it may
                // capture the packet on any (re)transmission attempt.
                if scheme == RelayScheme::XorWithOverhearing
                    && !b_overheard
                    && rng.gen::<f64>() < net.q_ab
                {
                    b_overheard = true;
                }
                if rng.gen::<f64>() < net.q_ar {
                    q.schedule_in(1.0, Stage::UplinkB(i));
                } else {
                    q.schedule_in(1.0, Stage::UplinkA(i));
                }
            }
            Stage::UplinkB(i) => {
                if scheme == RelayScheme::XorWithOverhearing
                    && !a_overheard
                    && rng.gen::<f64>() < net.q_ab
                {
                    a_overheard = true;
                }
                if rng.gen::<f64>() < net.q_br {
                    // Overheard packets skip their broadcast leg entirely.
                    got_a = a_overheard;
                    got_b = b_overheard;
                    forwarding_second_leg = false;
                    if got_a && got_b {
                        delivered += 1;
                        a_overheard = false;
                        b_overheard = false;
                        if i + 1 < pairs {
                            q.schedule_in(1.0, Stage::UplinkA(i + 1));
                        }
                    } else {
                        q.schedule_in(1.0, Stage::Downlink(i));
                    }
                } else {
                    q.schedule_in(1.0, Stage::UplinkB(i));
                }
            }
            Stage::Downlink(i) => {
                match scheme {
                    RelayScheme::XorNetworkCoding | RelayScheme::XorWithOverhearing => {
                        // One broadcast slot; each terminal independently
                        // hears it. Terminals that already have it ignore
                        // repeats.
                        if !got_b && rng.gen::<f64>() < net.q_br {
                            got_b = true;
                        }
                        if !got_a && rng.gen::<f64>() < net.q_ar {
                            got_a = true;
                        }
                    }
                    RelayScheme::PlainForwarding => {
                        // Two sequential unicast legs: first a→b's packet
                        // to b, then b→a's packet to a.
                        if !forwarding_second_leg {
                            if rng.gen::<f64>() < net.q_br {
                                got_b = true;
                                forwarding_second_leg = true;
                            }
                        } else if rng.gen::<f64>() < net.q_ar {
                            got_a = true;
                        }
                    }
                }
                if got_a && got_b {
                    delivered += 1;
                    a_overheard = false;
                    b_overheard = false;
                    if i + 1 < pairs {
                        q.schedule_in(1.0, Stage::UplinkA(i + 1));
                    }
                } else {
                    q.schedule_in(1.0, Stage::Downlink(i));
                }
            }
        }
    }
    PacketSimResult {
        pairs_delivered: delivered,
        slots,
        sum_throughput: 2.0 * delivered as f64 / slots as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> ErasureNetwork {
        ErasureNetwork::new(0.3, 0.8, 0.6)
    }

    #[test]
    fn all_pairs_delivered() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_exchange(&net(), RelayScheme::XorNetworkCoding, 500, &mut rng);
        assert_eq!(r.pairs_delivered, 500);
        assert!(r.slots >= 3 * 500, "at least 3 slots per pair");
    }

    #[test]
    fn throughput_below_lp_bound() {
        let n = net();
        let bound = n.xor_relay_bound();
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 3000, &mut rng);
        assert!(
            r.sum_throughput <= bound + 1e-9,
            "measured {} exceeds bound {bound}",
            r.sum_throughput
        );
        // The stop-and-wait scheme is not tight but must reach a decent
        // fraction of the bound on good links.
        assert!(
            r.sum_throughput > 0.4 * bound,
            "measured {} too far below bound {bound}",
            r.sum_throughput
        );
    }

    #[test]
    fn xor_beats_plain_forwarding() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(3);
        let xor = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 3000, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let fwd = simulate_exchange(&n, RelayScheme::PlainForwarding, 3000, &mut rng);
        assert!(
            xor.sum_throughput > fwd.sum_throughput,
            "XOR {} vs forwarding {}",
            xor.sum_throughput,
            fwd.sum_throughput
        );
    }

    #[test]
    fn perfect_links_give_three_slot_pairs() {
        // q = 1 everywhere: uplink a (1) + uplink b (1) + one broadcast (1)
        // = 3 slots per pair with XOR; forwarding needs 4.
        let n = ErasureNetwork::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let xor = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 100, &mut rng);
        assert_eq!(xor.slots, 300);
        assert!((xor.sum_throughput - 2.0 / 3.0).abs() < 1e-12);
        let fwd = simulate_exchange(&n, RelayScheme::PlainForwarding, 100, &mut rng);
        assert_eq!(fwd.slots, 400);
        assert!((fwd.sum_throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weaker_links_lower_throughput() {
        let strong = ErasureNetwork::new(0.5, 0.9, 0.9);
        let weak = ErasureNetwork::new(0.5, 0.4, 0.4);
        let mut rng = StdRng::seed_from_u64(5);
        let s = simulate_exchange(&strong, RelayScheme::XorNetworkCoding, 2000, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let w = simulate_exchange(&weak, RelayScheme::XorNetworkCoding, 2000, &mut rng);
        assert!(s.sum_throughput > w.sum_throughput);
        assert!(strong.xor_relay_bound() > weak.xor_relay_bound());
    }

    #[test]
    #[should_panic(expected = "positive success")]
    fn dead_link_rejected() {
        let n = ErasureNetwork::new(0.5, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 1, &mut rng);
    }

    #[test]
    fn overhearing_beats_plain_xor() {
        // A usable direct link lets overheard packets skip the broadcast —
        // the TDBC side-information gain, measured in slots.
        let n = ErasureNetwork::new(0.7, 0.8, 0.6);
        let mut rng = StdRng::seed_from_u64(21);
        let with = simulate_exchange(&n, RelayScheme::XorWithOverhearing, 4000, &mut rng);
        let mut rng = StdRng::seed_from_u64(21);
        let without = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 4000, &mut rng);
        assert!(
            with.sum_throughput > without.sum_throughput,
            "overhearing {} should beat plain XOR {}",
            with.sum_throughput,
            without.sum_throughput
        );
    }

    #[test]
    fn perfect_direct_link_removes_the_downlink() {
        // q_ab = 1: both terminals always overhear, so a pair needs only
        // the two uplink deliveries — 2 slots/pair on perfect links.
        let n = ErasureNetwork::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(22);
        let r = simulate_exchange(&n, RelayScheme::XorWithOverhearing, 100, &mut rng);
        assert_eq!(r.slots, 200);
        assert!((r.sum_throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_direct_link_reduces_to_plain_xor() {
        let n = ErasureNetwork::new(0.0, 0.8, 0.6);
        let mut rng = StdRng::seed_from_u64(23);
        let with = simulate_exchange(&n, RelayScheme::XorWithOverhearing, 2000, &mut rng);
        let mut rng = StdRng::seed_from_u64(23);
        let without = simulate_exchange(&n, RelayScheme::XorNetworkCoding, 2000, &mut rng);
        // Identical RNG consumption differs (overhearing draws), so only
        // the statistics are comparable.
        assert!(
            (with.sum_throughput - without.sum_throughput).abs() < 0.02,
            "q_ab = 0 should behave like plain XOR: {} vs {}",
            with.sum_throughput,
            without.sum_throughput
        );
    }
}
