//! Monte-Carlo study of relay-selection diversity (multi-relay
//! extension, see [`bcc_core::selection`]).
//!
//! Each trial draws independent Rayleigh fades for every candidate
//! relay's two links (and the shared direct link), then compares the
//! best-relay sum rate against a fixed single relay. Selection can only
//! help per-fade; the Monte Carlo quantifies by how much the *ergodic*
//! rate and the outage quantiles improve with the number of candidates —
//! the classic selection-diversity effect.

use crate::mc::{McConfig, McEstimate};
use bcc_channel::fading::FadingModel;
use bcc_core::protocol::Protocol;
use bcc_core::selection::RelayCandidates;
use bcc_num::stats::RunningStats;

/// Ergodic best-relay sum rate of `protocol` over i.i.d. fading across
/// all candidate links.
pub fn ergodic_selection_rate(
    candidates: &RelayCandidates,
    protocol: Protocol,
    power: f64,
    fading: FadingModel,
    cfg: &McConfig,
) -> McEstimate {
    cfg.run_par_with(bcc_core::kernel::SolveCtx::new, |ctx, rng, _| {
        let direct = fading.sample_power(rng);
        let fades: Vec<(f64, f64)> = (0..candidates.len())
            .map(|_| (fading.sample_power(rng), fading.sample_power(rng)))
            .collect();
        let faded = candidates.faded(direct, &fades);
        faded
            .select_with(protocol, power, ctx)
            .map(|s| s.solution.sum_rate)
            .unwrap_or(0.0)
    })
}

/// Ergodic sum rate when stuck with candidate `index` regardless of the
/// fade (the no-diversity baseline, sharing the same fade streams).
pub fn ergodic_fixed_relay_rate(
    candidates: &RelayCandidates,
    index: usize,
    protocol: Protocol,
    power: f64,
    fading: FadingModel,
    cfg: &McConfig,
) -> McEstimate {
    cfg.run_par_with(bcc_core::kernel::SolveCtx::new, |ctx, rng, _| {
        let direct = fading.sample_power(rng);
        let fades: Vec<(f64, f64)> = (0..candidates.len())
            .map(|_| (fading.sample_power(rng), fading.sample_power(rng)))
            .collect();
        let faded = candidates.faded(direct, &fades);
        ctx.solve_one(
            &faded.network(index, power),
            bcc_core::SolveRequest::sum_rate(protocol),
        )
        .map(|o| o.value)
        .unwrap_or(0.0)
    })
}

/// Per-trial best-relay sum rates (for outage quantiles).
pub fn selection_rate_samples(
    candidates: &RelayCandidates,
    protocol: Protocol,
    power: f64,
    fading: FadingModel,
    cfg: &McConfig,
) -> Vec<f64> {
    cfg.samples_par_with(bcc_core::kernel::SolveCtx::new, |ctx, rng, _| {
        let direct = fading.sample_power(rng);
        let fades: Vec<(f64, f64)> = (0..candidates.len())
            .map(|_| (fading.sample_power(rng), fading.sample_power(rng)))
            .collect();
        let faded = candidates.faded(direct, &fades);
        faded
            .select_with(protocol, power, ctx)
            .map(|s| s.solution.sum_rate)
            .unwrap_or(0.0)
    })
}

/// Convenience: mean of a sample (used by the diversity tests).
pub fn sample_mean(samples: &[f64]) -> f64 {
    let s: RunningStats = samples.iter().copied().collect();
    s.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric_candidates(n: usize) -> RelayCandidates {
        RelayCandidates::new(0.2, vec![(1.0, 1.0); n])
    }

    #[test]
    fn selection_dominates_fixed_relay_per_fade() {
        let c = symmetric_candidates(3);
        let cfg = McConfig::new(300, 5);
        let sel = ergodic_selection_rate(&c, Protocol::Mabc, 10.0, FadingModel::Rayleigh, &cfg);
        let fixed =
            ergodic_fixed_relay_rate(&c, 0, Protocol::Mabc, 10.0, FadingModel::Rayleigh, &cfg);
        // Same trial seeds → same fades → dominance trial-by-trial.
        assert!(sel.mean() >= fixed.mean());
        assert!(
            sel.mean() > fixed.mean() * 1.05,
            "3-way selection should give a visible ergodic gain: {} vs {}",
            sel.mean(),
            fixed.mean()
        );
    }

    #[test]
    fn diversity_gain_grows_with_candidates() {
        let cfg = McConfig::new(250, 6);
        let mut last = 0.0;
        for n in [1, 2, 4] {
            let c = symmetric_candidates(n);
            let v = ergodic_selection_rate(&c, Protocol::Mabc, 10.0, FadingModel::Rayleigh, &cfg)
                .mean();
            assert!(
                v >= last,
                "ergodic rate must grow with candidates: {v} < {last}"
            );
            last = v;
        }
    }

    #[test]
    fn no_fading_no_diversity_gain() {
        // Identical deterministic candidates: selection changes nothing.
        let c = symmetric_candidates(4);
        let cfg = McConfig::new(20, 7);
        let sel = ergodic_selection_rate(&c, Protocol::Hbc, 10.0, FadingModel::None, &cfg);
        let fixed = ergodic_fixed_relay_rate(&c, 2, Protocol::Hbc, 10.0, FadingModel::None, &cfg);
        assert!((sel.mean() - fixed.mean()).abs() < 1e-12);
    }

    #[test]
    fn outage_quantile_improves_more_than_mean() {
        // Selection diversity compresses the lower tail: the 10% quantile
        // gains relatively more than the mean.
        use bcc_num::stats::Ecdf;
        let cfg = McConfig::new(400, 8);
        let one = selection_rate_samples(
            &symmetric_candidates(1),
            Protocol::Mabc,
            10.0,
            FadingModel::Rayleigh,
            &cfg,
        );
        let four = selection_rate_samples(
            &symmetric_candidates(4),
            Protocol::Mabc,
            10.0,
            FadingModel::Rayleigh,
            &cfg,
        );
        let q1 = Ecdf::new(one.clone()).quantile(0.1);
        let q4 = Ecdf::new(four.clone()).quantile(0.1);
        let m1 = sample_mean(&one);
        let m4 = sample_mean(&four);
        assert!(q4 > q1, "tail must improve: {q1} -> {q4}");
        assert!(
            q4 / q1 > m4 / m1,
            "tail gain ({:.3}x) should exceed mean gain ({:.3}x)",
            q4 / q1,
            m4 / m1
        );
    }
}
