//! End-to-end symbol-level MABC exchange at the physical layer.
//!
//! A literal, decodable instantiation of the paper's Theorem-2 scheme:
//!
//! 1. **MAC phase** — `a` and `b` simultaneously transmit Hamming-coded
//!    BPSK blocks; the relay observes the superposition through its two
//!    complex gains and runs a **joint maximum-likelihood** decoder over
//!    all `16 × 16` message pairs.
//! 2. **Broadcast phase** — the relay re-encodes `ŵ_a ⊕ ŵ_b` and
//!    broadcasts; each terminal decodes the XOR word and strips its own
//!    message.
//!
//! The measured message-pair error rate must fall monotonically with SNR
//! and vanish at high SNR — the operational face of the Theorem-2
//! achievability proof.

use bcc_channel::awgn::AwgnChannel;
use bcc_channel::gain::LinkGain;
use bcc_channel::ChannelState;
use bcc_coding::gf2::xor_bits;
use bcc_coding::hamming::Hamming74;
use bcc_num::Complex64;
use rand::Rng;

/// BPSK mapping: bit 0 → `+√P`, bit 1 → `−√P`.
fn bpsk(bit: u8, power: f64) -> Complex64 {
    let amp = power.sqrt();
    Complex64::new(if bit == 0 { amp } else { -amp }, 0.0)
}

/// Configuration of one symbol-level MABC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolSimConfig {
    /// Per-node transmit power (noise is unit power).
    pub power: f64,
    /// Channel power gains (`gab` is unused — MABC has no side
    /// information).
    pub state: ChannelState,
}

/// Outcome of a batch of MABC message exchanges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolSimResult {
    /// Exchanges attempted.
    pub trials: usize,
    /// Exchanges where **both** terminals recovered the opposite message.
    pub successes: usize,
}

impl SymbolSimResult {
    /// Message-pair error rate.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.successes as f64 / self.trials as f64
    }
}

/// Runs `trials` complete MABC exchanges of 4-bit messages.
///
/// Phases use fixed (deterministic) gains from `cfg.state` with zero phase
/// offset — coherent reception, as the paper's full-CSI assumption allows.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn run_mabc_exchange<R: Rng + ?Sized>(
    cfg: &SymbolSimConfig,
    trials: usize,
    rng: &mut R,
) -> SymbolSimResult {
    assert!(trials > 0, "need at least one trial");
    let code = Hamming74::new();
    let channel = AwgnChannel::default();
    let g_ar = LinkGain::from_power(cfg.state.gar(), 0.0);
    let g_br = LinkGain::from_power(cfg.state.gbr(), 0.0);

    // Precompute all 16 codewords.
    let codewords: Vec<Vec<u8>> = (0..16u8)
        .map(|m| code.encode(&[(m) & 1, (m >> 1) & 1, (m >> 2) & 1, (m >> 3) & 1]))
        .collect();
    let msg_bits = |m: u8| -> Vec<u8> { vec![m & 1, (m >> 1) & 1, (m >> 2) & 1, (m >> 3) & 1] };

    let mut successes = 0;
    for _ in 0..trials {
        let wa: u8 = rng.gen_range(0..16);
        let wb: u8 = rng.gen_range(0..16);

        // ---- Phase 1: superposed MAC transmission, 7 symbols.
        let mut y_r = Vec::with_capacity(7);
        for (&ca, &cb) in codewords[wa as usize].iter().zip(&codewords[wb as usize]) {
            let xa = bpsk(ca, cfg.power);
            let xb = bpsk(cb, cfg.power);
            y_r.push(channel.receive_mac(g_ar, xa, g_br, xb, rng));
        }
        // Joint ML over all (ma, mb) pairs: minimise Σ |y - ga·s(ca) -
        // gb·s(cb)|².
        let mut best = (0u8, 0u8);
        let mut best_metric = f64::INFINITY;
        for ma in 0..16u8 {
            for mb in 0..16u8 {
                let mut metric = 0.0;
                for k in 0..7 {
                    let expect = g_ar.apply(bpsk(codewords[ma as usize][k], cfg.power))
                        + g_br.apply(bpsk(codewords[mb as usize][k], cfg.power));
                    metric += (y_r[k] - expect).norm_sqr();
                }
                if metric < best_metric {
                    best_metric = metric;
                    best = (ma, mb);
                }
            }
        }
        let (wa_hat, wb_hat) = best;

        // ---- Phase 2: relay broadcasts the XOR message.
        let wr = wa_hat ^ wb_hat;
        let cw_r = code.encode(&msg_bits(wr));
        let mut y_a = Vec::with_capacity(7);
        let mut y_b = Vec::with_capacity(7);
        for &bit in &cw_r {
            let x = bpsk(bit, cfg.power);
            // Reciprocal gains: r→a uses g_ar, r→b uses g_br; independent
            // noise at each terminal.
            y_a.push(channel.receive(g_ar, x, rng));
            y_b.push(channel.receive(g_br, x, rng));
        }
        let demod = |ys: &[Complex64], g: LinkGain| -> Vec<u8> {
            ys.iter()
                .map(|&y| u8::from(g.matched_filter(y).re < 0.0))
                .collect()
        };
        let wr_at_a = code.decode(&demod(&y_a, g_ar));
        let wr_at_b = code.decode(&demod(&y_b, g_br));

        // ---- Terminals strip their own message.
        let wb_at_a = xor_bits(&wr_at_a, &msg_bits(wa));
        let wa_at_b = xor_bits(&wr_at_b, &msg_bits(wb));
        if wb_at_a == msg_bits(wb) && wa_at_b == msg_bits(wa) {
            successes += 1;
        }
    }
    SymbolSimResult { trials, successes }
}

/// Runs `trials` complete **TDBC** exchanges of 4-bit messages, exposing
/// the value of side information at the symbol level.
///
/// Phases: (1) `a` sends its codeword — the relay *and* `b` listen;
/// (2) `b` sends — the relay and `a` listen; (3) the relay broadcasts the
/// XOR codeword. Terminal `b` decodes `w_a` by **jointly combining** its
/// phase-1 direct observation with the phase-3 broadcast (16-hypothesis
/// ML over both observations), and symmetrically for `a`.
///
/// With `use_side_information = false` the terminals ignore their phase-1/2
/// observations — the ablated decoder the E-A1 experiment studies
/// analytically.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn run_tdbc_exchange<R: Rng + ?Sized>(
    cfg: &SymbolSimConfig,
    use_side_information: bool,
    trials: usize,
    rng: &mut R,
) -> SymbolSimResult {
    assert!(trials > 0, "need at least one trial");
    let code = Hamming74::new();
    let channel = AwgnChannel::default();
    let g_ab = LinkGain::from_power(cfg.state.gab(), 0.0);
    let g_ar = LinkGain::from_power(cfg.state.gar(), 0.0);
    let g_br = LinkGain::from_power(cfg.state.gbr(), 0.0);

    let codewords: Vec<Vec<u8>> = (0..16u8)
        .map(|m| code.encode(&[m & 1, (m >> 1) & 1, (m >> 2) & 1, (m >> 3) & 1]))
        .collect();
    let msg_bits = |m: u8| -> Vec<u8> { vec![m & 1, (m >> 1) & 1, (m >> 2) & 1, (m >> 3) & 1] };
    // Single-observation ML decode of a codeword index.
    let ml_decode = |ys: &[Complex64], g: LinkGain, cws: &Vec<Vec<u8>>, power: f64| -> u8 {
        let mut best = 0u8;
        let mut best_metric = f64::INFINITY;
        for (m, cw) in cws.iter().enumerate() {
            let metric: f64 = ys
                .iter()
                .zip(cw)
                .map(|(&y, &bit)| (y - g.apply(bpsk(bit, power))).norm_sqr())
                .sum();
            if metric < best_metric {
                best_metric = metric;
                best = m as u8;
            }
        }
        best
    };

    let mut successes = 0;
    for _ in 0..trials {
        let wa: u8 = rng.gen_range(0..16);
        let wb: u8 = rng.gen_range(0..16);

        // Phase 1: a transmits; r and b observe independently.
        let mut y_r1 = Vec::with_capacity(7);
        let mut y_b1 = Vec::with_capacity(7);
        for &bit in &codewords[wa as usize] {
            let x = bpsk(bit, cfg.power);
            y_r1.push(channel.receive(g_ar, x, rng));
            y_b1.push(channel.receive(g_ab, x, rng));
        }
        // Phase 2: b transmits; r and a observe.
        let mut y_r2 = Vec::with_capacity(7);
        let mut y_a2 = Vec::with_capacity(7);
        for &bit in &codewords[wb as usize] {
            let x = bpsk(bit, cfg.power);
            y_r2.push(channel.receive(g_br, x, rng));
            y_a2.push(channel.receive(g_ab, x, rng));
        }
        // Relay decodes each message from its clean point-to-point phase.
        let wa_hat = ml_decode(&y_r1, g_ar, &codewords, cfg.power);
        let wb_hat = ml_decode(&y_r2, g_br, &codewords, cfg.power);

        // Phase 3: relay broadcasts the XOR codeword.
        let wr = wa_hat ^ wb_hat;
        let mut y_a3 = Vec::with_capacity(7);
        let mut y_b3 = Vec::with_capacity(7);
        for &bit in &codewords[wr as usize] {
            let x = bpsk(bit, cfg.power);
            y_a3.push(channel.receive(g_ar, x, rng));
            y_b3.push(channel.receive(g_br, x, rng));
        }

        // b decodes wa: hypotheses over wa, combining the direct phase-1
        // look with the XOR broadcast (b knows wb).
        let decode_with_combining = |y_direct: &[Complex64],
                                     g_direct: LinkGain,
                                     y_bc: &[Complex64],
                                     g_bc: LinkGain,
                                     own: u8| {
            let mut best = 0u8;
            let mut best_metric = f64::INFINITY;
            for hyp in 0..16u8 {
                let cw_direct = &codewords[hyp as usize];
                let cw_bc = &codewords[(hyp ^ own) as usize];
                let mut metric = 0.0;
                if use_side_information {
                    metric += y_direct
                        .iter()
                        .zip(cw_direct)
                        .map(|(&y, &bit)| (y - g_direct.apply(bpsk(bit, cfg.power))).norm_sqr())
                        .sum::<f64>();
                }
                metric += y_bc
                    .iter()
                    .zip(cw_bc)
                    .map(|(&y, &bit)| (y - g_bc.apply(bpsk(bit, cfg.power))).norm_sqr())
                    .sum::<f64>();
                if metric < best_metric {
                    best_metric = metric;
                    best = hyp;
                }
            }
            best
        };
        let wa_at_b = decode_with_combining(&y_b1, g_ab, &y_b3, g_br, wb);
        let wb_at_a = decode_with_combining(&y_a2, g_ab, &y_a3, g_ar, wa);

        if msg_bits(wa_at_b) == msg_bits(wa) && msg_bits(wb_at_a) == msg_bits(wb) {
            successes += 1;
        }
    }
    SymbolSimResult { trials, successes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(power_db: f64) -> SymbolSimConfig {
        SymbolSimConfig {
            power: 10f64.powf(power_db / 10.0),
            // Symmetric strong relay links.
            state: ChannelState::new(0.2, 1.0, 1.0),
        }
    }

    #[test]
    fn high_snr_exchange_is_error_free() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_mabc_exchange(&cfg(18.0), 300, &mut rng);
        assert_eq!(r.error_rate(), 0.0, "errors at 18 dB: {}", r.error_rate());
    }

    #[test]
    fn error_rate_decreases_with_snr() {
        let mut rates = Vec::new();
        for p_db in [-2.0, 4.0, 10.0] {
            let mut rng = StdRng::seed_from_u64(2);
            let r = run_mabc_exchange(&cfg(p_db), 800, &mut rng);
            rates.push(r.error_rate());
        }
        assert!(
            rates[0] > rates[1] && rates[1] > rates[2],
            "waterfall violated: {rates:?}"
        );
        assert!(
            rates[0] > 0.05,
            "low SNR should be unreliable: {}",
            rates[0]
        );
    }

    #[test]
    fn asymmetric_gains_still_work_at_high_snr() {
        let c = SymbolSimConfig {
            power: 10f64.powf(20.0 / 10.0),
            state: ChannelState::new(0.2, 2.0, 0.5),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_mabc_exchange(&c, 200, &mut rng);
        assert!(r.error_rate() < 0.02, "error rate {}", r.error_rate());
    }

    #[test]
    fn zero_power_is_hopeless() {
        let c = SymbolSimConfig {
            power: 0.0,
            state: ChannelState::new(1.0, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = run_mabc_exchange(&c, 400, &mut rng);
        // Pure guessing: success needs both 4-bit messages right twice.
        assert!(r.error_rate() > 0.9, "error rate {}", r.error_rate());
    }

    #[test]
    fn tdbc_side_information_lowers_error_rate() {
        // Moderate SNR, decent direct link: combining the overheard
        // phase-1 observation must help measurably.
        let c = SymbolSimConfig {
            power: 10f64.powf(1.0 / 10.0),
            state: ChannelState::new(0.8, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let with_si = run_tdbc_exchange(&c, true, 1200, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let without_si = run_tdbc_exchange(&c, false, 1200, &mut rng);
        assert!(
            with_si.error_rate() < without_si.error_rate(),
            "SI {} should beat no-SI {}",
            with_si.error_rate(),
            without_si.error_rate()
        );
    }

    #[test]
    fn tdbc_clean_at_high_snr() {
        let c = SymbolSimConfig {
            power: 10f64.powf(16.0 / 10.0),
            state: ChannelState::new(0.2, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_tdbc_exchange(&c, true, 300, &mut rng);
        assert_eq!(r.error_rate(), 0.0, "residual errors at 16 dB");
    }

    #[test]
    fn tdbc_dead_direct_link_equalises_decoders() {
        // With Gab = 0 the side observation is pure noise; using it adds
        // a noise term to the metric but no information — error rates
        // should be statistically close.
        let c = SymbolSimConfig {
            power: 10f64.powf(6.0 / 10.0),
            state: ChannelState::new(0.0, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let with_si = run_tdbc_exchange(&c, true, 1500, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let without_si = run_tdbc_exchange(&c, false, 1500, &mut rng);
        assert!(
            (with_si.error_rate() - without_si.error_rate()).abs() < 0.03,
            "dead link: {} vs {}",
            with_si.error_rate(),
            without_si.error_rate()
        );
    }
}
