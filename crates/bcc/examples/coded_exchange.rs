//! A literal coded bidirectional exchange, end to end.
//!
//! ```bash
//! cargo run --example coded_exchange --release
//! ```
//!
//! Runs the two operational layers of the reproduction:
//!
//! 1. **Symbol level** — the MABC protocol with Hamming(7,4)-coded BPSK, a
//!    joint-ML multiple-access decoder at the relay, XOR re-encoding and
//!    side-information stripping (the Theorem-2 scheme made literal).
//! 2. **Packet level** — XOR relaying vs plain forwarding on erasure
//!    links, against the LP throughput bound.

use bcc::channel::ChannelState;
use bcc::plot::Table;
use bcc::sim::packet::{simulate_exchange, ErasureNetwork, RelayScheme};
use bcc::sim::symbol::{run_mabc_exchange, SymbolSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Symbol level.
    println!("symbol-level MABC exchange (Hamming(7,4) + BPSK):\n");
    let mut table = Table::new(vec!["P [dB]".into(), "pair error rate".into()]);
    for p_db in [0.0, 4.0, 8.0, 12.0] {
        let cfg = SymbolSimConfig {
            power: 10f64.powf(p_db / 10.0),
            state: ChannelState::new(0.2, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(42);
        let r = run_mabc_exchange(&cfg, 1500, &mut rng);
        table.row(vec![format!("{p_db}"), format!("{:.4}", r.error_rate())]);
    }
    println!("{}", table.render());

    // ---- Packet level.
    println!("packet-level relaying on erasure links (q_ar = 0.8, q_br = 0.6):\n");
    let net = ErasureNetwork::new(0.3, 0.8, 0.6);
    let bound = net.xor_relay_bound();
    let mut rng = StdRng::seed_from_u64(7);
    let xor = simulate_exchange(&net, RelayScheme::XorNetworkCoding, 10_000, &mut rng);
    let mut rng = StdRng::seed_from_u64(7);
    let fwd = simulate_exchange(&net, RelayScheme::PlainForwarding, 10_000, &mut rng);
    println!("  LP sum-throughput bound : {bound:.4} packets/slot");
    println!(
        "  XOR network coding      : {:.4} packets/slot",
        xor.sum_throughput
    );
    println!(
        "  plain forwarding        : {:.4} packets/slot",
        fwd.sum_throughput
    );
    println!(
        "  network-coding gain     : {:.1}%",
        (xor.sum_throughput / fwd.sum_throughput - 1.0) * 100.0
    );
    assert!(xor.sum_throughput <= bound);
    assert!(xor.sum_throughput > fwd.sum_throughput);
}
