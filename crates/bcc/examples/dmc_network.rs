//! The general discrete-memoryless-channel form of the bounds (paper
//! Sections II–III), on an all-binary network.
//!
//! ```bash
//! cargo run --example dmc_network
//! ```
//!
//! Part 1: every link is a BSC and the multiple-access phase is the XOR
//! channel `y_r = x_a ⊕ x_b ⊕ e` — the "cleanest" MAC for network coding,
//! since its one-bit output carries exactly the XOR the relay wants to
//! broadcast. Sweeping the direct-link quality reproduces the paper's
//! low-vs-high SNR reversal in its discrete guise.
//!
//! Part 2: with *asymmetric* broadcast channels (a Z-channel toward one
//! terminal, the mirrored Z toward the other), different relay input
//! biases favour different rate corners — exactly the situation where the
//! paper's time-sharing variable `Q` buys real rate pairs.

use bcc::core::discrete::DiscreteNetwork;
use bcc::core::optimizer;
use bcc::core::region::{hull_max_ra, RateRegion};
use bcc::info::{Dmc, Pmf};
use bcc::plot::Table;

fn main() {
    // ---- Part 1: MABC/TDBC reversal in the direct-link quality.
    let uniform = (Pmf::uniform(2), Pmf::uniform(2), Pmf::uniform(2));
    println!("binary bidirectional relay: BSC links + XOR MAC");
    println!("(uplinks/downlinks BSC(0.05), MAC noise 0.02)\n");
    let mut table = Table::new(vec![
        "p_direct".into(),
        "MABC".into(),
        "TDBC".into(),
        "HBC".into(),
        "winner".into(),
    ]);
    for p_direct in [0.5, 0.3, 0.1, 0.01] {
        let net = DiscreteNetwork::binary_symmetric(p_direct, 0.05, 0.05, 0.02);
        let (pa, pb, pr) = &uniform;
        let mabc = optimizer::max_sum_rate(&net.mabc_constraints(pa, pb, pr))
            .expect("LP")
            .objective;
        let tdbc = optimizer::max_sum_rate(&net.tdbc_inner_constraints(pa, pb, pr))
            .expect("LP")
            .objective;
        let hbc = optimizer::max_sum_rate(&net.hbc_inner_constraints(pa, pb, pr))
            .expect("LP")
            .objective;
        let winner = if mabc >= tdbc { "MABC" } else { "TDBC" };
        table.row(vec![
            format!("{p_direct}"),
            format!("{mabc:.4}"),
            format!("{tdbc:.4}"),
            format!("{hbc:.4}"),
            winner.into(),
        ]);
    }
    println!("{}", table.render());
    println!("a useless direct link (p = 0.5) favours MABC's joint MAC phase; a clean");
    println!("one favours TDBC's side information — the discrete face of the paper's");
    println!("low/high-SNR observation.\n");

    // ---- Part 2: time sharing (Q) with asymmetric broadcast channels.
    // r→a is a Z-channel (symbol 1 may flip to 0), r→b the mirrored Z:
    // a relay input biased toward 0 protects the r→a link, biased toward 1
    // protects r→b. No single bias serves both corners.
    let z_to_a = Dmc::z_channel(0.85);
    let z_to_b = Dmc::new(vec![vec![0.15, 0.85], vec![0.0, 1.0]]);
    let xor_mac = DiscreteNetwork::binary_symmetric(0.3, 0.05, 0.05, 0.05).mac_to_relay;
    let net = DiscreteNetwork::new(
        xor_mac,
        Dmc::bsc(0.05),
        Dmc::bsc(0.3),
        Dmc::bsc(0.05),
        Dmc::bsc(0.3),
        z_to_a,
        z_to_b,
    );
    let biased_low = (Pmf::uniform(2), Pmf::uniform(2), Pmf::bernoulli(0.2));
    let biased_high = (Pmf::uniform(2), Pmf::uniform(2), Pmf::bernoulli(0.8));
    let inputs = vec![uniform.clone(), biased_low.clone(), biased_high.clone()];
    let hull = net.mabc_time_sharing_boundary(&inputs, 16);

    println!("time-sharing hull over relay-input biases {{0.5, 0.2, 0.8}}");
    println!("(Z-channel r→a, mirrored Z r→b: no single bias serves both corners)\n");
    let mut t2 = Table::new(vec![
        "Rb".into(),
        "uniform only".into(),
        "bias 0.2".into(),
        "bias 0.8".into(),
        "Q-hull".into(),
    ]);
    let region_of = |i: &(Pmf, Pmf, Pmf)| {
        RateRegion::new(vec![net.mabc_constraints(&i.0, &i.1, &i.2)], "fixed")
    };
    let rb_max = hull.iter().map(|p| p.rb).fold(0.0, f64::max);
    let mut q_gain = false;
    for k in 0..=4 {
        let rb = rb_max * k as f64 / 4.0;
        let vals: Vec<f64> = inputs
            .iter()
            .map(|i| region_of(i).max_ra_given_rb(rb).unwrap_or(0.0))
            .collect();
        let hull_ra = hull_max_ra(&hull, rb).unwrap_or(0.0);
        if hull_ra > vals.iter().cloned().fold(0.0, f64::max) + 1e-6 {
            q_gain = true;
        }
        t2.row(vec![
            format!("{rb:.4}"),
            format!("{:.4}", vals[0]),
            format!("{:.4}", vals[1]),
            format!("{:.4}", vals[2]),
            format!("{hull_ra:.4}"),
        ]);
    }
    println!("{}", t2.render());
    if q_gain {
        println!("the Q-hull strictly exceeds every fixed input at some Rb — time sharing pays.");
    } else {
        println!("finding: even under strong Z-channel asymmetry the capacity-achieving");
        println!("relay input stays near uniform (Z(0.85) optimum ≈ 0.38), so the uniform");
        println!("region already contains both biased ones and Q adds nothing — matching");
        println!("the paper's |Q| = 1 evaluation being WLOG for (near-)symmetric channels.");
    }
}
