//! Outage analysis under Rayleigh fading — what a cellular operator would
//! actually quote (the paper's quasi-static fading model, taken to its
//! operational conclusion).
//!
//! ```bash
//! cargo run --example outage_analysis --release
//! ```
//!
//! One single-point `Scenario` with an attached Rayleigh study estimates,
//! for each protocol at the Fig. 4 gains: the ergodic sum rate, the 5%-
//! and 10%-outage sum rates, and the outage probability of operating at
//! half the no-fading optimum.

use bcc::plot::Table;
use bcc::prelude::*;

fn main() {
    let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
    let trials = 3000;
    let mut evaluator = Scenario::at(net).rayleigh(trials, 20260609).build();
    let exact = evaluator.compare().expect("LP");
    let outage = evaluator.outage().expect("LP");

    println!(
        "Rayleigh fading, P = 10 dB, {} ({trials} trials)\n",
        net.state()
    );
    let mut table = Table::new(vec![
        "protocol".into(),
        "no-fading".into(),
        "ergodic".into(),
        "5%-outage".into(),
        "10%-outage".into(),
        "P[outage @ half rate]".into(),
    ]);
    // Below-resolution estimates come back as `None` — print them as the
    // certified bound rather than a fake zero.
    let show = |v: Option<f64>| match v {
        Some(x) => format!("{x:.4}"),
        None => format!("< {:.1e}", 1.0 / trials as f64),
    };
    for proto in Protocol::ALL {
        let envelope = exact.get(proto).expect("evaluated").sum_rate;
        table.row(vec![
            proto.name().into(),
            format!("{envelope:.4}"),
            format!("{:.4}", outage.ergodic_series(proto)[0].1),
            show(outage.outage_rate(proto, 0, 0.05)),
            show(outage.outage_rate(proto, 0, 0.10)),
            show(outage.outage_probability(proto, 0, envelope / 2.0)),
        ]);
    }
    println!("{}", table.render());
    println!("note: ergodic < no-fading for every protocol (Jensen), and HBC");
    println!("dominates MABC/TDBC at every quantile because it subsumes them");
    println!("fade-by-fade.");
}
