//! Optimum power allocation under a total budget — Yi & Kim's question
//! asked of the paper's protocols: if the three nodes share one power
//! budget, who should get how much?
//!
//! ```bash
//! cargo run --example power_allocation --release
//! ```
//!
//! Two views of the same axis:
//!
//! 1. a `Scenario::power_split_sweep` over the relay's share of the
//!    budget (deterministic sum rates, no fading) — the coarse landscape;
//! 2. `Evaluator::allocation` under Rayleigh fading — the golden-section
//!    search for the split minimising outage (maximising the ε-outage
//!    equal-rate sum rate), per protocol.
//!
//! On this asymmetric network (Fig. 4 gains) the optimal split is *not*
//! uniform: protocols that lean on the relay send real power to it, DT
//! starves it entirely, and the weaker terminal-relay link earns the
//! bigger terminal share.

use bcc::plot::{Chart, Series, Table};
use bcc::prelude::*;

fn main() {
    let state = ChannelState::from_db(Db::new(-7.0), Db::new(0.0), Db::new(5.0));
    let total = 3.0 * Db::new(10.0).to_linear(); // the budget of 3 nodes at P = 10 dB

    // ---- View 1: deterministic sum rate vs relay share (balanced terminals).
    let shares: Vec<f64> = (1..=17).map(|k| k as f64 / 18.0).collect();
    let sweep = Scenario::power_split_sweep(state, total, shares)
        .build()
        .sweep()
        .expect("LPs solvable");
    let mut chart = Chart::new(64, 16)
        .title(format!(
            "optimal sum rate vs relay power share (budget 3×10 dB, {state})"
        ))
        .x_label("relay share of total power")
        .y_label("sum rate [bits/use]");
    for &p in sweep.protocols() {
        chart = chart.add(Series::from_points(p.name(), sweep.series_points(p)));
    }
    println!("{}", chart.render());

    // ---- View 2: outage-optimal splits under Rayleigh fading.
    let trials = 2000;
    let eps = 0.1;
    let alloc = Scenario::at(GaussianNetwork::with_powers(
        PowerSplit::uniform(total),
        state,
    ))
    .rayleigh(trials, 20260729)
    .build()
    .allocation(eps)
    .expect("allocation search runs");

    println!("ε = {eps} outage-optimal power splits ({trials} Rayleigh trials, common fades):\n");
    let mut table = Table::new(vec![
        "protocol".into(),
        "p_a".into(),
        "p_b".into(),
        "p_r".into(),
        "relay share".into(),
        "ε-outage eq-rate".into(),
        "uniform split".into(),
        "gain".into(),
    ]);
    for a in alloc.entries() {
        table.row(vec![
            a.protocol.name().into(),
            format!("{:.2}", a.split.p_a()),
            format!("{:.2}", a.split.p_b()),
            format!("{:.2}", a.split.p_r()),
            format!("{:.3}", a.split.relay_share()),
            format!("{:.4}", a.value),
            format!("{:.4}", a.uniform_value),
            format!(
                "+{:.1}%",
                100.0 * a.gain_over_uniform() / a.uniform_value.max(1e-12)
            ),
        ]);
    }
    println!("{}", table.render());

    let dt = alloc
        .get(Protocol::DirectTransmission)
        .expect("DT evaluated");
    println!(
        "DT hands the relay {:.1}% of the budget — a relay it cannot use.",
        100.0 * dt.split.relay_share()
    );
}
