//! Adaptive protocol selection across an SNR range — the system design
//! question the paper's Fig. 4 answers qualitatively.
//!
//! ```bash
//! cargo run --example protocol_selection
//! ```
//!
//! Runs one power-sweep `Scenario` at the Fig. 4 gains, prints the winning
//! protocol per power level, locates the exact MABC/TDBC crossover by
//! bisection, and traces the two rate-region boundaries just below and
//! above it to show the regions swapping dominance.

use bcc::core::comparison::sum_rate_crossover_db;
use bcc::plot::Table;
use bcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = GaussianNetwork::from_db(Db::new(0.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));

    let comparisons = Scenario::power_sweep_db(net, (-10..=25).step_by(5).map(|p| p as f64))
        .build()
        .comparisons()?;
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "winner".into(),
        "sum rate".into(),
        "runner-up".into(),
        "margin [%]".into(),
    ]);
    for cmp in &comparisons {
        let ranked = cmp.ranked();
        table.row(vec![
            format!("{}", cmp.x),
            ranked[0].protocol.name().into(),
            format!("{:.4}", ranked[0].sum_rate),
            ranked[1].protocol.name().into(),
            format!(
                "{:.1}",
                (ranked[0].sum_rate / ranked[1].sum_rate - 1.0) * 100.0
            ),
        ]);
    }
    println!("{}", table.render());

    match sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)? {
        Some(p) => {
            println!("MABC/TDBC crossover: P = {:.3} dB", p.value());
            for offset in [-5.0, 5.0] {
                let n = net.with_power_db(Db::new(p.value() + offset));
                let mabc = n.region(Protocol::Mabc, Bound::Inner);
                let tdbc = n.region(Protocol::Tdbc, Bound::Inner);
                println!(
                    "  P = crossover {offset:+} dB: MABC sum {:.4}, TDBC sum {:.4}",
                    mabc.max_sum_rate()?,
                    tdbc.max_sum_rate()?
                );
            }
        }
        None => println!("no crossover in the scanned range"),
    }
    Ok(())
}
