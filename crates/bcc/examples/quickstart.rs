//! Quickstart: evaluate every protocol bound at one channel.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Sets up the paper's Fig. 4 network (P = 10 dB, G_ab = −7 dB,
//! G_ar = 0 dB, G_br = 5 dB) as a single-point `Scenario`, prints each
//! protocol's schedule diagram, optimal sum rate and time allocation, and
//! checks the two structural facts the paper proves: MABC's region is
//! exactly its capacity, and HBC subsumes both special cases.

use bcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = GaussianNetwork::from_db(
        Db::new(10.0), // P
        Db::new(-7.0), // G_ab
        Db::new(0.0),  // G_ar
        Db::new(5.0),  // G_br
    );
    println!("network: P = 10 dB, {}\n", net.state());

    for proto in Protocol::ALL {
        println!("{}", proto.schedule_diagram());
    }

    let cmp = Scenario::at(net).build().compare()?;
    println!("optimal sum rates (phase durations optimised by LP):");
    for sol in cmp.solutions() {
        let durations: Vec<String> = sol.durations.iter().map(|d| format!("{d:.3}")).collect();
        println!(
            "  {:<5} {:.4} bits/use   Ra = {:.4}, Rb = {:.4}, Δ = [{}]",
            sol.protocol.name(),
            sol.sum_rate,
            sol.ra,
            sol.rb,
            durations.join(", ")
        );
    }
    let best = cmp.best()?;
    println!(
        "\nwinner: {} at {:.4} bits/use",
        best.protocol, best.sum_rate
    );

    // The structural facts:
    let hbc = cmp.get(Protocol::Hbc).expect("evaluated").sum_rate;
    assert!(hbc >= cmp.get(Protocol::Mabc).expect("evaluated").sum_rate - 1e-9);
    assert!(hbc >= cmp.get(Protocol::Tdbc).expect("evaluated").sum_rate - 1e-9);
    println!("verified: HBC ≥ MABC and HBC ≥ TDBC (HBC subsumes both)");
    Ok(())
}
