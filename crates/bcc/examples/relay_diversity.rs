//! Relay-selection diversity — the multi-relay extension in action.
//!
//! ```bash
//! cargo run --example relay_diversity --release
//! ```
//!
//! With several candidate relays and quasi-static Rayleigh fading, picking
//! the instantaneously best relay (full CSI, as the paper assumes) buys
//! both ergodic rate and — much more dramatically — outage performance.

use bcc::channel::fading::FadingModel;
use bcc::core::protocol::Protocol;
use bcc::core::selection::RelayCandidates;
use bcc::num::stats::Ecdf;
use bcc::plot::Table;
use bcc::sim::selection::{sample_mean, selection_rate_samples};
use bcc::sim::McConfig;

fn main() {
    let power = 10.0; // 10 dB over unit noise
    let cfg = McConfig::new(2000, 99);

    println!("MABC through the best of N relays (Rayleigh, P = 10 dB):\n");
    let mut table = Table::new(vec![
        "N relays".into(),
        "ergodic".into(),
        "10%-outage".into(),
        "1%-outage".into(),
    ]);
    for n in [1usize, 2, 4, 8] {
        let candidates = RelayCandidates::new(0.2, vec![(1.0, 1.0); n]);
        let samples = selection_rate_samples(
            &candidates,
            Protocol::Mabc,
            power,
            FadingModel::Rayleigh,
            &cfg,
        );
        let ecdf = Ecdf::new(samples.clone());
        table.row(vec![
            format!("{n}"),
            format!("{:.4}", sample_mean(&samples)),
            format!("{:.4}", ecdf.quantile(0.10)),
            format!("{:.4}", ecdf.quantile(0.01)),
        ]);
    }
    println!("{}", table.render());
    println!("the deep-fade quantiles improve far faster than the mean — the");
    println!("signature of selection diversity.");
}
