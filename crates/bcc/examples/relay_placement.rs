//! Relay placement in a cellular corridor (the paper's motivating
//! scenario: `a` a mobile, `b` a base station, `r` a relay station).
//!
//! ```bash
//! cargo run --example relay_placement
//! ```
//!
//! One relay-position `Scenario` sweeps the relay along the line between
//! the terminals with path-loss exponent γ = 3 and asks, per position:
//! which protocol maximises the sum rate, and where should an operator
//! actually place the relay?

use bcc::plot::{Chart, Series};
use bcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gamma = 3.0;

    let sweep = Scenario::relay_position_sweep(10.0, gamma, (1..=19).map(|i| i as f64 / 20.0))?
        .build()
        .sweep()?;

    let mut best_series = Series::new("best protocol sum rate");
    let mut best_position = (0.0, f64::MIN);
    println!("relay position sweep (P = 10 dB, γ = {gamma}):\n");
    println!("{:>6}  {:>8}  {:<6}", "d", "sum rate", "winner");
    for (i, &d) in sweep.xs.iter().enumerate() {
        let winner = sweep.winner(i);
        let rate = sweep.series(winner).expect("evaluated").solutions[i].sum_rate;
        best_series.push(d, rate);
        if rate > best_position.1 {
            best_position = (d, rate);
        }
        println!("{d:>6.2}  {rate:>8.4}  {:<6}", winner.name());
    }
    println!(
        "\noptimal placement: d = {:.2} ({:.4} bits/use)",
        best_position.0, best_position.1
    );
    println!(
        "{}",
        Chart::new(60, 14)
            .title("Best-protocol sum rate vs relay position")
            .x_label("relay position d (a at 0, b at 1)")
            .y_label("bits/use")
            .add(best_series)
            .render()
    );
    Ok(())
}
