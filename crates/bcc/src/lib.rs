//! # Bidirectional Coded Cooperation (BCC)
//!
//! A Rust reproduction of **Kim, Mitran, Tarokh — "Performance Bounds for
//! Bidirectional Coded Cooperation Protocols"** (ICDCS 2007; IEEE Trans.
//! Inf. Theory 54(11):5235–5240, 2008).
//!
//! Two terminals `a` and `b` exchange messages over a shared half-duplex
//! wireless channel with the help of a relay `r`. The paper analyses three
//! decode-and-forward protocols — MABC (2 phases), TDBC (3 phases) and HBC
//! (4 phases) — and derives capacity inner/outer bounds for each, then
//! evaluates them on the AWGN channel with path loss.
//!
//! # Quickstart: the `Scenario` builder
//!
//! The canonical entry point is [`prelude::Scenario`]: describe a grid of
//! operating points (one network, a power sweep, a relay-position sweep,
//! …), a protocol set, a bound selection and an optional fading study;
//! `build()` compiles it into an evaluator that runs the whole grid
//! batched (one reused LP workspace) and returns typed results.
//!
//! ```
//! use bcc::prelude::*;
//!
//! // Fig. 4 setup of the paper: P = 10 dB, Gab = -7 dB, Gar = 0 dB,
//! // Gbr = 5 dB.
//! let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
//!
//! // Compare every protocol at this one operating point:
//! let cmp = Scenario::at(net).build().compare().unwrap();
//! for sol in cmp.solutions() {
//!     println!("{}: {:.3} bits/use", sol.protocol, sol.sum_rate);
//! }
//! assert_eq!(cmp.best().unwrap().protocol, Protocol::Hbc);
//!
//! // Sweep the transmit power over the paper's Fig. 4 range — the MABC →
//! // TDBC reversal shows up as a change of winner along the grid:
//! let sweep = Scenario::power_sweep_db(net, (-10..=25).map(f64::from))
//!     .protocols([Protocol::Mabc, Protocol::Tdbc])
//!     .build()
//!     .sweep()
//!     .unwrap();
//! assert_eq!(sweep.winner(0), Protocol::Mabc);
//! assert_eq!(sweep.winner(sweep.len() - 1), Protocol::Tdbc);
//! ```
//!
//! Attach a fading model for outage/ergodic studies:
//!
//! ```
//! use bcc::prelude::*;
//!
//! let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
//! let outage = Scenario::at(net).rayleigh(200, 42).build().outage().unwrap();
//! let ergodic = outage.ergodic_series(Protocol::Hbc)[0].1;
//! // `None` would mean the 10% quantile sits below the Monte-Carlo
//! // resolution floor 1/trials — impossible here (0.10 ≥ 1/200).
//! let ten_pct = outage.outage_rate(Protocol::Hbc, 0, 0.10).unwrap();
//! assert!(ten_pct < ergodic, "deep fades pull the 10%-outage rate below the mean");
//! ```
//!
//! Or ask the finite-SNR DMT questions — outage vs multiplexing gain over
//! an SNR grid, and the outage-optimal split of a total power budget:
//!
//! ```
//! use bcc::prelude::*;
//!
//! let net = GaussianNetwork::from_db(Db::new(0.0), Db::new(0.0), Db::new(0.0), Db::new(0.0));
//! let dmt = Scenario::power_sweep_db(net, [0.0, 10.0])
//!     .protocols([Protocol::Tdbc])
//!     .multiplexing_gains([0.25])
//!     .rayleigh(200, 7)
//!     .build()
//!     .dmt()
//!     .unwrap();
//! let out = dmt.outage(Protocol::Tdbc, 0);
//! assert!(out[1] <= out[0], "outage falls with SNR at fixed r");
//! ```
//!
//! # Workspace layout
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`num`] | complex numbers, dB units, special functions, statistics |
//! | [`lp`] | dense two-phase simplex LP solver with reusable workspaces |
//! | [`info`] | entropies, mutual information, DMCs, Blahut–Arimoto |
//! | [`channel`] | gains, path loss, Rayleigh fading, AWGN simulation |
//! | [`coding`] | GF(2) codes, XOR network coding, random binning |
//! | [`core`] | **the paper's bounds** (Theorems 2–6), regions, the `Scenario` API |
//! | [`sim`] | Monte-Carlo outage/ergodic + packet/symbol simulators |
//! | [`plot`] | ASCII charts, CSV and aligned-table writers |

#![forbid(unsafe_code)]

pub use bcc_channel as channel;
pub use bcc_coding as coding;
pub use bcc_core as core;
pub use bcc_info as info;
pub use bcc_lp as lp;
pub use bcc_num as num;
pub use bcc_plot as plot;
pub use bcc_sim as sim;

/// One-stop imports for the batch evaluation API (the workspace's
/// canonical entry point) plus the types most workloads touch.
pub mod prelude {
    pub use bcc_core::prelude::*;
    pub use bcc_sim::McConfig;
}
