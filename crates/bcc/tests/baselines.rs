//! Integration tests for the baselines beyond the paper's theorems
//! (naive four-phase forwarding, amplify-and-forward) and their
//! relationship to the coded protocols.

use bcc::core::bounds::{af, mabc, naive};
use bcc::core::gaussian::GaussianNetwork;
use bcc::core::optimizer;
use bcc::core::protocol::Protocol;
use bcc::num::interp::crossings;
use bcc::num::Db;

fn fig4(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

#[test]
fn coded_relaying_always_beats_naive_forwarding() {
    for p_db in [-10.0, 0.0, 10.0, 20.0, 30.0] {
        let net = fig4(p_db);
        let naive_sr = optimizer::max_sum_rate(&naive::capacity_constraints(
            net.power().expect("symmetric network"),
            &net.state(),
        ))
        .unwrap()
        .objective;
        let coded = net.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        assert!(
            coded >= naive_sr - 1e-9,
            "P={p_db}: MABC {coded} < naive {naive_sr}"
        );
        // HBC dominates the naive scheme too (it contains MABC).
        let hbc = net.max_sum_rate(Protocol::Hbc).unwrap().sum_rate;
        assert!(hbc >= naive_sr - 1e-9);
    }
}

#[test]
fn df_af_crossover_is_in_the_high_snr_regime() {
    // Sample both curves on a grid and locate the DF/AF crossover by
    // interpolation: it must exist and sit well above 10 dB at Fig. 4
    // gains.
    let grid: Vec<f64> = (-10..=30).map(f64::from).collect();
    let df: Vec<(f64, f64)> = grid
        .iter()
        .map(|&p| {
            let net = fig4(p);
            (
                p,
                optimizer::max_sum_rate(&mabc::capacity_constraints(
                    net.power().expect("symmetric network"),
                    &net.state(),
                ))
                .unwrap()
                .objective,
            )
        })
        .collect();
    let af_curve: Vec<(f64, f64)> = grid
        .iter()
        .map(|&p| {
            let net = fig4(p);
            (
                p,
                af::achievable_rates(net.power().expect("symmetric network"), &net.state())
                    .sum_rate(),
            )
        })
        .collect();
    let cross = crossings(&df, &af_curve);
    assert!(!cross.is_empty(), "DF/AF crossover must exist");
    assert!(
        cross[0] > 10.0 && cross[0] < 25.0,
        "crossover at {} dB outside the expected band",
        cross[0]
    );
    // DF above at low SNR, AF above at high SNR.
    assert!(df[0].1 > af_curve[0].1);
    assert!(df.last().unwrap().1 < af_curve.last().unwrap().1);
}

#[test]
fn af_respects_every_hop_capacity() {
    for p_db in [0.0, 10.0, 20.0] {
        let net = fig4(p_db);
        let r = af::achievable_rates(net.power().expect("symmetric network"), &net.state());
        let half = 0.5;
        assert!(r.ra <= half * bcc::info::awgn_capacity(net.snr_ar()) + 1e-9);
        assert!(r.ra <= half * bcc::info::awgn_capacity(net.snr_br()) + 1e-9);
        assert!(r.rb <= half * bcc::info::awgn_capacity(net.snr_br()) + 1e-9);
        assert!(r.rb <= half * bcc::info::awgn_capacity(net.snr_ar()) + 1e-9);
    }
}

#[test]
fn naive_region_embeds_into_mabc_region() {
    // Any naive-feasible (ra, rb, Δ) maps to an MABC-feasible point with
    // merged phases — spot-check across a grid of operating points.
    let net = fig4(10.0);
    let naive_set =
        naive::capacity_constraints(net.power().expect("symmetric network"), &net.state());
    let mabc_set =
        mabc::capacity_constraints(net.power().expect("symmetric network"), &net.state());
    let durations = [0.3, 0.25, 0.25, 0.2];
    let merged = [durations[0] + durations[2], durations[1] + durations[3]];
    for i in 0..12 {
        for j in 0..12 {
            let (ra, rb) = (i as f64 * 0.2, j as f64 * 0.2);
            if naive_set.all_satisfied(ra, rb, &durations, 1e-12) {
                assert!(
                    mabc_set.all_satisfied(ra, rb, &merged, 1e-9),
                    "naive point ({ra},{rb}) escaped MABC with merged phases"
                );
            }
        }
    }
}
