//! Batched-vs-scalar differential suite: the SoA lane kernels behind
//! `PointBlock` / `SolveCtx::solve_block` and the blocked `Evaluator`
//! fast paths must be **bitwise identical** to per-point scalar solves —
//! on random grids, under both bound families, with and without fading,
//! across power splits, and at any block size or worker count.
//!
//! The contract under test is strict `to_bits()` equality, not an
//! epsilon: every lane kernel is the scalar closed form instantiated at
//! lane width M, evaluating the same operations in the same order, so
//! agreement must be exact. An epsilon here would let a silent kernel
//! rewrite drift the published figures.
//!
//! Thread discipline: each property re-runs its scenario at 1 and 4
//! in-process workers and asserts bit-identity; the CI matrix runs this
//! whole suite under `BCC_THREADS=1` and `BCC_THREADS=4`, certifying the
//! ambient-threaded path too.

use bcc::prelude::*;
use bcc_core::kernel;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random operating point: per-node powers and link gains spanning
/// dead links, near-degenerate and strongly asymmetric geometries.
fn arb_net() -> impl Strategy<Value = GaussianNetwork> {
    (
        (0.0f64..40.0, 0.0f64..40.0, 0.0f64..40.0),
        (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
    )
        .prop_map(|((pa, pb, pr), (gab, gar, gbr))| {
            GaussianNetwork::with_powers(
                PowerSplit::new(pa, pb, pr),
                ChannelState::new(gab, gar, gbr),
            )
        })
}

fn scenario_of(nets: &[GaussianNetwork], bound: Bound) -> Scenario {
    Scenario::networks(
        "grid index",
        nets.iter().enumerate().map(|(i, &n)| (i as f64, n)),
    )
    .bound(bound)
}

fn sweep_bits(sweep: &SweepResult) -> Vec<(u64, u64, u64)> {
    let mut bits = Vec::new();
    for &p in sweep.protocols() {
        let series = sweep.series(p).expect("series present");
        for sol in &series.solutions {
            bits.push((sol.sum_rate.to_bits(), sol.ra.to_bits(), sol.rb.to_bits()));
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `solve_block` against per-point `solve_one`, both objectives, on
    /// a hand-built block — the kernel-level contract, free of any
    /// evaluator plumbing.
    #[test]
    fn solve_block_is_bitwise_equal_to_solve_one(
        nets in vec(arb_net(), 1..23),
    ) {
        let mut block = PointBlock::new();
        for n in &nets {
            block.push_net(n);
        }
        block.compute_caps();

        let mut ctx = SolveCtx::new();
        let mut out = Vec::new();
        for proto in Protocol::ALL {
            for objective in [Objective::SumRate, Objective::MaxMin] {
                let req = match objective {
                    Objective::SumRate => SolveRequest::sum_rate(proto),
                    Objective::MaxMin => SolveRequest::max_min(proto),
                };
                out.clear();
                ctx.solve_block(&block, req, &mut out).unwrap();
                prop_assert_eq!(out.len(), nets.len());
                for (n, got) in nets.iter().zip(&out) {
                    let want = ctx.solve_one(n, req).unwrap();
                    prop_assert_eq!(got.value.to_bits(), want.value.to_bits(),
                        "{proto} {objective:?} value");
                    prop_assert_eq!(got.ra.to_bits(), want.ra.to_bits(),
                        "{proto} {objective:?} ra");
                    prop_assert_eq!(got.rb.to_bits(), want.rb.to_bits(),
                        "{proto} {objective:?} rb");
                    prop_assert_eq!(got.durations, want.durations,
                        "{proto} {objective:?} durations");
                }
            }
        }
    }

    /// The blocked sweep fast path against the per-point scalar kernel,
    /// under both bound families, at adversarial block sizes (1 = every
    /// point a tail, 5 = never a whole number of lanes, 1024 = one
    /// block) and 1 vs 4 workers.
    #[test]
    fn sweep_is_block_size_and_thread_invariant(
        nets in vec(arb_net(), 1..17),
        bound_outer in 0u8..2,
    ) {
        let bound = if bound_outer == 1 { Bound::Outer } else { Bound::Inner };

        // Scalar reference: solve_one per (point, protocol).
        let mut ctx = SolveCtx::new();
        let mut want = Vec::new();
        for &proto in Protocol::ALL.iter() {
            for n in &nets {
                let req = SolveRequest::sum_rate(proto).with_bound(bound);
                let sol = ctx.solve_one(n, req).unwrap();
                want.push((sol.value.to_bits(), sol.ra.to_bits(), sol.rb.to_bits()));
            }
        }

        for block_size in [1usize, 5, 1024] {
            for threads in [1usize, 4] {
                let sweep = scenario_of(&nets, bound)
                    .block_size(block_size)
                    .threads(threads)
                    .build()
                    .sweep()
                    .unwrap();
                prop_assert_eq!(
                    &sweep_bits(&sweep), &want,
                    "bound {:?}, block {}, threads {}", bound, block_size, threads
                );
            }
        }
    }

    /// The blocked Monte-Carlo fading path: outage samples must be
    /// bit-identical at any block size and worker count (per-trial RNG
    /// streams make each draw independent of its blockmates).
    #[test]
    fn outage_is_block_size_and_thread_invariant(
        nets in vec(arb_net(), 1..5),
        seed in 0u64..u64::MAX,
    ) {
        let run = |block_size: usize, threads: usize| {
            scenario_of(&nets, Bound::Inner)
                .rayleigh(64, seed)
                .block_size(block_size)
                .threads(threads)
                .build()
                .outage()
                .unwrap()
        };
        let reference = run(1, 1);
        for (block_size, threads) in [(1, 4), (7, 1), (7, 4), (1024, 1), (1024, 4)] {
            prop_assert_eq!(
                &run(block_size, threads), &reference,
                "block {}, threads {}", block_size, threads
            );
        }
    }

    /// The raw block kernels against the public scalar kernel entry
    /// points — the layer the evaluator paths are built on.
    #[test]
    fn block_kernels_match_scalar_kernels(nets in vec(arb_net(), 1..13)) {
        let mut block = PointBlock::new();
        for n in &nets {
            block.push_net(n);
        }
        block.compute_caps();
        let mut sums = Vec::new();
        let mut pts = Vec::new();
        for proto in Protocol::ALL {
            sums.clear();
            bcc_core::batch::max_sum_rate_block(&block, proto, &mut sums);
            for (n, got) in nets.iter().zip(&sums) {
                let want = kernel::max_sum_rate(n, proto).unwrap();
                prop_assert_eq!(got.sum_rate.to_bits(), want.sum_rate.to_bits(), "{proto}");
                prop_assert_eq!(got.ra.to_bits(), want.ra.to_bits(), "{proto}");
                prop_assert_eq!(got.rb.to_bits(), want.rb.to_bits(), "{proto}");
                prop_assert_eq!(got.durations, want.durations, "{proto}");
            }

            pts.clear();
            let covered = bcc_core::batch::max_min_rate_block(&block, proto, &mut pts);
            prop_assert_eq!(covered, proto != Protocol::Hbc);
            if covered {
                for (n, got) in nets.iter().zip(&pts) {
                    let want = kernel::max_min_rate(n, proto).unwrap();
                    prop_assert_eq!(got.objective.to_bits(), want.objective.to_bits(), "{proto}");
                    prop_assert_eq!(got.durations, want.durations, "{proto}");
                }
            }
        }
    }
}

/// The multi-pair sweep (which blocks the flattened `point × pair` grid
/// internally) stays bit-identical across worker counts — deterministic
/// coverage for the K-pair blocked path on a fixed heterogeneous set.
#[test]
fn multipair_blocked_sweep_is_thread_invariant() {
    let pairs = PairSet::new(
        (0..3)
            .map(|i| {
                GaussianNetwork::with_powers(
                    PowerSplit::new(8.0 + f64::from(i), 10.0, 6.0),
                    ChannelState::new(0.2 * f64::from(i + 1), 1.0, 2.5 / f64::from(i + 1)),
                )
            })
            .collect(),
    );
    let run = |threads: usize| {
        MultiPairScenario::power_sweep_db(&pairs, (0..40).map(|k| f64::from(k) * 0.25))
            .threads(threads)
            .build()
            .sweep()
            .unwrap()
    };
    assert_eq!(
        run(1),
        run(4),
        "multi-pair blocked sweep not thread-invariant"
    );
}
