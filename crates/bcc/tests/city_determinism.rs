//! City-sweep determinism and serial-vs-parallel cross-validation.
//!
//! The [`bcc_core::city`] evaluator promises results **bit-identical at
//! any thread count and any block size**, and the `bcc-sim` full-matrix
//! twin promises bitwise agreement with it. This target certifies both
//! contracts at integration scale, and runs under the CI
//! `BCC_THREADS={1,4}` matrix so the *ambient* thread policy (no
//! explicit `.threads(..)` pin) is exercised across processes too.

use bcc_core::city::{AssignmentKind, CityResult, ASSIGNMENTS, SCHEDULES};
use bcc_core::prelude::*;
use bcc_sim::city::CityAssignmentSim;

const POWER_DB: f64 = 10.0;
const PROTOCOLS: [Protocol; 2] = [Protocol::Mabc, Protocol::Tdbc];

fn topo() -> Topology {
    Topology::random(0xC17Au64, 120, 10, 12.0, 3.0).unwrap()
}

fn sweep(threads: Option<usize>, block: Option<usize>) -> CityResult {
    let mut sc = Scenario::city(topo(), POWER_DB).protocols(PROTOCOLS);
    if let Some(t) = threads {
        sc = sc.threads(t);
    }
    if let Some(b) = block {
        sc = sc.block_size(b);
    }
    sc.build().sweep().unwrap()
}

#[test]
fn bit_identical_across_threads_and_block_sizes() {
    // Serial single-edge blocks are the ground truth; the ambient
    // (None) policy follows BCC_THREADS, so the CI matrix covers both
    // thread counts without a pin.
    let base = sweep(Some(1), Some(1));
    for (threads, block) in [
        (Some(1), Some(1024)),
        (Some(4), Some(1)),
        (Some(4), Some(1024)),
        (Some(3), Some(7)),
        (None, None),
    ] {
        let other = sweep(threads, block);
        assert_eq!(base, other, "threads {threads:?} block {block:?}");
    }
}

#[test]
fn matches_serial_full_matrix_twin_bitwise() {
    let res = sweep(None, None);
    let sim = CityAssignmentSim::run(
        &topo(),
        POWER_DB,
        &PROTOCOLS,
        bcc_core::city::DEFAULT_ASSIGN_SEED,
    )
    .unwrap();
    for k in 0..res.num_pairs() {
        assert_eq!(res.pair(k).best().rate, sim.best_edge(k).rate, "pair {k}");
        assert_eq!(res.pair(k).best().relay, sim.best_edge(k).relay, "pair {k}");
    }
    assert_eq!(
        res.assignment(AssignmentKind::Greedy),
        sim.greedy_assignment()
    );
    assert_eq!(
        res.assignment(AssignmentKind::Random),
        sim.random_assignment()
    );
    for kind in [AssignmentKind::Greedy, AssignmentKind::Random] {
        let assign = res.assignment(kind);
        assert_eq!(
            res.best_edge_rate(kind),
            sim.best_edge_rate(&assign),
            "{kind}"
        );
        for s in SCHEDULES {
            assert_eq!(
                res.scheduled_rate(kind, s),
                sim.scheduled_rate(&assign, s),
                "{kind} {s}"
            );
        }
    }
    // The refined assignment re-scores identically on the full matrix.
    let refined = res.assignment(AssignmentKind::Refined);
    assert_eq!(
        res.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare),
        sim.scheduled_rate(&refined, Schedule::TimeShare)
    );
}

#[test]
fn assignment_dominance_at_integration_scale() {
    let res = sweep(None, None);
    assert!(
        res.best_edge_rate(AssignmentKind::Greedy) >= res.best_edge_rate(AssignmentKind::Random)
    );
    let refined = res.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare);
    assert!(refined >= res.scheduled_rate(AssignmentKind::Greedy, Schedule::TimeShare));
    assert!(refined >= res.scheduled_rate(AssignmentKind::Random, Schedule::TimeShare));
    for kind in ASSIGNMENTS {
        assert!(res.best_edge_rate(kind).is_finite());
        for s in SCHEDULES {
            assert!(res.scheduled_rate(kind, s).is_finite());
        }
    }
}
