//! Monte-Carlo-vs-analytic cross-validation: the two independent outage
//! paths of the workspace — the classic `bcc-sim` simulator
//! (`OutageProfile` / `finite_snr_outage`, per-network `McConfig`
//! streams) and the batch `Evaluator` (grid-decorrelated streams) — must
//! agree within statistical tolerance on a coarse `SNR × rate` grid, for
//! every protocol.
//!
//! The two paths use **different seeds on purpose**: at a shared seed and
//! a single grid point they are bit-identical by construction (one
//! fade-drawing code path), which would make the comparison vacuous.
//! Independent seeds turn it into a genuine two-sample statistical check.
//!
//! Thread discipline: every evaluator result is re-asserted bit-identical
//! between 1 and 4 in-process workers, and the sim path's samples are
//! pinned to hard constants — the CI matrix runs this whole suite under
//! `BCC_THREADS=1` and `BCC_THREADS=4`, so those pins certify
//! cross-process bit-identity of the ambient-threaded path too.

use bcc::prelude::*;
use bcc::sim::outage::{finite_snr_outage, OutageProfile};
use bcc::sim::{ergodic::sum_rate_samples, McConfig};

const EVAL_SEED: u64 = 0xE7A1_0001;
const SIM_SEED: u64 = 0x51D0_0001;
const TRIALS: usize = 1500;

fn fig4_net(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

/// A two-sample binomial agreement band: 4 pooled standard errors plus a
/// small absolute guard for near-degenerate probabilities.
fn tolerance(p1: f64, p2: f64, n: usize) -> f64 {
    let p = 0.5 * (p1 + p2);
    4.0 * (p * (1.0 - p) * 2.0 / n as f64).sqrt() + 0.01
}

#[test]
fn evaluator_outage_matches_simulator_on_snr_rate_grid() {
    let powers_db = [5.0, 15.0];
    let scenario = Scenario::power_sweep_db(fig4_net(0.0), powers_db).rayleigh(TRIALS, EVAL_SEED);
    let serial = scenario.clone().threads(1).build().outage().unwrap();
    let parallel = scenario.threads(4).build().outage().unwrap();
    assert_eq!(serial, parallel, "evaluator outage not thread-invariant");

    for (i, &p_db) in powers_db.iter().enumerate() {
        let net = fig4_net(p_db);
        let snr = net.reference_snr();
        // Coarse rate axis: two multiplexing-style targets per SNR point.
        let targets = [0.2, 0.5].map(|r| r * (1.0 + snr).log2());
        for proto in Protocol::ALL {
            let profile = OutageProfile::estimate(
                &net,
                proto,
                FadingModel::Rayleigh,
                &McConfig::new(TRIALS, SIM_SEED),
            );
            for &target in &targets {
                // Unresolved (below-floor) estimates compare as their
                // certified upper bound's midpoint 0 — the statistical
                // tolerance absorbs the difference at these mid-range
                // targets.
                let from_eval = serial.outage_probability(proto, i, target).unwrap_or(0.0);
                let from_sim = profile.outage_probability(target).unwrap_or(0.0);
                let tol = tolerance(from_eval, from_sim, TRIALS);
                assert!(
                    (from_eval - from_sim).abs() <= tol,
                    "{proto} at {p_db} dB, target {target:.3}: \
                     evaluator {from_eval} vs simulator {from_sim} (tol {tol:.4})"
                );
            }
        }
    }
}

#[test]
fn dmt_outage_matches_finite_snr_simulator() {
    let powers_db = [5.0, 15.0];
    let gains = [0.2, 0.5];
    let scenario = Scenario::power_sweep_db(fig4_net(0.0), powers_db)
        .multiplexing_gains(gains)
        .rayleigh(TRIALS, EVAL_SEED);
    let serial = scenario.clone().threads(1).build().dmt().unwrap();
    let parallel = scenario.threads(4).build().dmt().unwrap();
    assert_eq!(serial, parallel, "DMT result not thread-invariant");

    for (gi, &r) in gains.iter().enumerate() {
        for (i, &p_db) in powers_db.iter().enumerate() {
            let net = fig4_net(p_db);
            for proto in Protocol::ALL {
                let from_eval = serial.outage(proto, gi)[i];
                let from_sim = finite_snr_outage(
                    &net,
                    proto,
                    FadingModel::Rayleigh,
                    &McConfig::new(TRIALS, SIM_SEED),
                    r,
                )
                .unwrap_or(0.0);
                let tol = tolerance(from_eval, from_sim, TRIALS);
                assert!(
                    (from_eval - from_sim).abs() <= tol,
                    "{proto} at {p_db} dB, r = {r}: \
                     DMT {from_eval} vs simulator {from_sim} (tol {tol:.4})"
                );
            }
        }
    }
}

#[test]
#[allow(clippy::excessive_precision)] // the pins are full-precision on purpose
fn simulator_samples_pinned_across_thread_counts() {
    // These constants were produced by a trusted run; the CI matrix
    // re-runs this test under BCC_THREADS=1 and BCC_THREADS=4, so any
    // thread-count dependence of the ambient-threaded sim path (or a
    // silent change to the seeding policy) breaks the pin.
    let net = fig4_net(10.0);
    let cfg = McConfig::new(400, 0x5EED_CAFE);
    let pins = [
        (
            Protocol::DirectTransmission,
            9.72525577259363505e-1,
            1.31415349699148543e0,
        ),
        (Protocol::Hbc, 1.10236259929905156e0, 2.52078504402814163e0),
    ];
    for (proto, first, mean) in pins {
        let s = sum_rate_samples(&net, proto, FadingModel::Rayleigh, &cfg);
        assert_eq!(s.len(), 400);
        assert!(
            (s[0] - first).abs() < 1e-15,
            "{proto}: first sample drifted to {:.17e}",
            s[0]
        );
        let m = s.iter().sum::<f64>() / s.len() as f64;
        assert!(
            (m - mean).abs() < 1e-13,
            "{proto}: mean drifted to {m:.17e}"
        );
    }
}

/// The canonical heterogeneous pair set of the multi-pair checks: the
/// Fig. 4 pair, a fully symmetric pair and a weak-relay pair, truncated
/// to `k`, all at the common power `p_db`.
fn multi_pairs(k: usize, p_db: f64) -> PairSet {
    let p = Db::new(p_db).to_linear();
    let nets = [
        fig4_net(p_db),
        GaussianNetwork::new(p, ChannelState::new(1.0, 1.0, 1.0)),
        GaussianNetwork::new(p, ChannelState::new(1.0, 0.2, 0.2)),
    ];
    PairSet::new(nets[..k].to_vec())
}

#[test]
fn multipair_outage_matches_simulator_on_snr_k_grid() {
    // The evaluator's flattened point×trial fan-out and the serial
    // McConfig-driven bcc-sim path estimate the same schedule outage
    // probabilities from independent seeds: a two-sample statistical
    // check per (SNR, K, protocol, schedule, target) cell.
    use bcc::sim::multipair::MultiPairProfile;
    for k in [2usize, 3] {
        let powers_db = [5.0, 15.0];
        let scenario = Scenario::pairs(
            "power [dB]",
            powers_db.iter().map(|&p| (p, multi_pairs(k, p))),
        )
        .rayleigh(TRIALS, EVAL_SEED);
        let serial = scenario.clone().threads(1).build().outage().unwrap();
        let parallel = scenario.threads(4).build().outage().unwrap();
        assert_eq!(serial, parallel, "K={k} outage not thread-invariant");

        for (i, &p_db) in powers_db.iter().enumerate() {
            let pairs = multi_pairs(k, p_db);
            let snr = Db::new(p_db).to_linear();
            let targets = [0.2, 0.5].map(|r| r * (1.0 + snr).log2());
            for proto in Protocol::ALL {
                let profile = MultiPairProfile::estimate(
                    &pairs,
                    proto,
                    FadingModel::Rayleigh,
                    &McConfig::new(TRIALS, SIM_SEED),
                );
                for schedule in SCHEDULES {
                    for &target in &targets {
                        let from_eval = serial
                            .outage_probability(proto, i, schedule, target)
                            .unwrap_or(0.0);
                        let from_sim = profile.outage_probability(schedule, target).unwrap_or(0.0);
                        let tol = tolerance(from_eval, from_sim, TRIALS);
                        assert!(
                            (from_eval - from_sim).abs() <= tol,
                            "{proto} K={k} at {p_db} dB, {schedule}, target {target:.3}: \
                             evaluator {from_eval} vs simulator {from_sim} (tol {tol:.4})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
#[allow(clippy::excessive_precision)] // the pins are full-precision on purpose
fn multipair_simulator_samples_pinned_across_thread_counts() {
    // Trusted-run constants for the K = 2 sim path; the CI matrix re-runs
    // this under BCC_THREADS=1 and BCC_THREADS=4, certifying that the
    // per-pair stream nesting (`mix_seed(seed, pair)`) is thread-count
    // independent and stable across processes.
    use bcc::sim::multipair::multi_pair_samples;
    let pairs = multi_pairs(2, 10.0);
    let cfg = McConfig::new(400, 0x5EED_CAFE);
    let pins = [
        (
            Protocol::DirectTransmission,
            [1.31067685446126569e0, 2.34863042368702191e0],
            [1.39611742318413290e0, 2.91658001431716363e0],
        ),
        (
            Protocol::Hbc,
            [2.56987342219996195e0, 2.34863042368702191e0],
            [2.61293262299798368e0, 2.83275198233149483e0],
        ),
    ];
    for (proto, firsts, means) in pins {
        let s = multi_pair_samples(&pairs, proto, FadingModel::Rayleigh, &cfg);
        assert_eq!(s.len(), 2);
        for pair in 0..2 {
            assert_eq!(s[pair].len(), 400);
            assert!(
                (s[pair][0] - firsts[pair]).abs() < 1e-15,
                "{proto} pair {pair}: first sample drifted to {:.17e}",
                s[pair][0]
            );
            let m = s[pair].iter().sum::<f64>() / s[pair].len() as f64;
            assert!(
                (m - means[pair]).abs() < 1e-13,
                "{proto} pair {pair}: mean drifted to {m:.17e}"
            );
        }
    }
}

#[test]
fn nakagami_outage_cross_validates_between_paths() {
    // The cross-validation must hold for the new fading family too, and
    // m = 1 must reproduce Rayleigh exactly on both paths.
    let net = fig4_net(10.0);
    let m4 = FadingModel::Nakagami { m: 4.0 };
    let scenario = Scenario::at(net).fading(m4, TRIALS, EVAL_SEED);
    let serial = scenario.clone().threads(1).build().outage().unwrap();
    assert_eq!(
        serial,
        scenario.threads(4).build().outage().unwrap(),
        "Nakagami outage not thread-invariant"
    );
    let target = 0.4 * (1.0 + net.reference_snr()).log2();
    for proto in Protocol::ALL {
        let profile = OutageProfile::estimate(&net, proto, m4, &McConfig::new(TRIALS, SIM_SEED));
        let from_eval = serial.outage_probability(proto, 0, target).unwrap_or(0.0);
        let from_sim = profile.outage_probability(target).unwrap_or(0.0);
        let tol = tolerance(from_eval, from_sim, TRIALS);
        assert!(
            (from_eval - from_sim).abs() <= tol,
            "{proto} Nakagami-4: evaluator {from_eval} vs simulator {from_sim}"
        );
    }
    // m = 1 ≡ Rayleigh, bit for bit, through the full outage pipeline.
    let ray = Scenario::at(net).rayleigh(200, 9).build().outage().unwrap();
    let nak = Scenario::at(net)
        .fading(FadingModel::Nakagami { m: 1.0 }, 200, 9)
        .build()
        .outage()
        .unwrap();
    for proto in Protocol::ALL {
        assert_eq!(ray.samples(proto, 0), nak.samples(proto, 0), "{proto}");
    }
}
