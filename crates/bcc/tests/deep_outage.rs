//! Deep-outage integration suite: unbiasedness of the importance-sampled
//! estimator against plain Monte Carlo, golden pins of the analytic
//! tails, and high-SNR slope cross-checks against the cooperative-DMT
//! asymptotes of cs/0506018.
//!
//! The statistical layer is property-based (seeded proptest over SNR,
//! fading shape and protocol); the golden layer pins the estimator
//! against closed forms at probabilities plain MC cannot touch. Every
//! deep-outage run is additionally re-asserted bit-identical between 1
//! and 4 worker threads — the CI matrix re-runs the suite under
//! `BCC_THREADS=1` and `BCC_THREADS=4`.

use bcc::num::special::log2_1p;
use bcc::prelude::*;
use bcc::sim::deep::deep_sum_rate_samples;
use bcc::sim::outage::OutageProfile;
use bcc::sim::McConfig;
use proptest::prelude::*;

fn fig4_net(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

/// The analytic lower tail bound at the finite-SNR DMT target
/// `r·log2(1 + SNR_ref)` (exact for DT).
fn analytic_lo(protocol: Protocol, model: FadingModel, p_db: f64, r: f64) -> f64 {
    let net = fig4_net(p_db);
    let target = r * log2_1p(net.reference_snr());
    analytic_outage(&net, protocol, model, target)
        .expect("gamma fade powers admit analytic tails")
        .lo
}

/// Log-log slope of the analytic lower tail between two SNR points.
fn analytic_lo_slope(
    protocol: Protocol,
    model: FadingModel,
    r: f64,
    p1_db: f64,
    p2_db: f64,
) -> f64 {
    let (a, b) = (
        analytic_lo(protocol, model, p1_db, r),
        analytic_lo(protocol, model, p2_db, r),
    );
    -(b / a).ln() / ((p2_db - p1_db) / 10.0 * std::f64::consts::LN_10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Unbiasedness in the overlap regime: where plain MC still resolves
    /// the outage probability, the force-sampled IS estimate must agree
    /// within a pooled 4σ band — across Rayleigh/Nakagami fading,
    /// protocols, and worker thread counts (bit-identity between 1 and 4).
    #[test]
    fn importance_sampling_agrees_with_plain_mc_in_overlap(
        p_db in 6.0f64..14.0,
        pick in 0usize..4,
        seed in 0u64..(1 << 32),
    ) {
        const TRIALS: usize = 3000;
        let m = [1.0, 2.5][pick % 2];
        let protocol = [Protocol::Mabc, Protocol::DirectTransmission][pick / 2];
        let net = fig4_net(p_db);
        let model = FadingModel::Nakagami { m };
        let scenario = Scenario::at(net)
            .protocols([protocol])
            .multiplexing_gains([0.4])
            .fading(model, TRIALS, seed as u64);
        let deep = DeepSpec::new().force_sampling(true);
        let serial = scenario.clone().threads(1).build().deep_outage(&deep).unwrap();
        let parallel = scenario.threads(4).build().deep_outage(&deep).unwrap();
        prop_assert_eq!(
            serial.cell(protocol, 0, 0),
            parallel.cell(protocol, 0, 0),
            "deep outage not thread-invariant"
        );

        let cell = serial.cell(protocol, 0, 0);
        let p_is = cell.probability.expect("overlap regime resolves under IS");
        let rel = cell.rel_error.expect("resolved");
        // Independent plain-MC estimate of the same target.
        let plain = OutageProfile::estimate(
            &net,
            protocol,
            model,
            &McConfig::new(TRIALS, 0x91A1_0000 ^ seed),
        );
        let p_mc = plain
            .outage_probability(serial.target_rate(0, 0))
            .expect("overlap regime resolves under plain MC");
        let band = 4.0
            * (p_is * rel).hypot((p_mc * (1.0 - p_mc) / TRIALS as f64).sqrt())
            + 0.005;
        prop_assert!(
            (p_is - p_mc).abs() <= band,
            "{protocol} m={m} at {p_db:.1} dB: IS {p_is:.4e} vs MC {p_mc:.4e} (band {band:.2e})"
        );
    }

    /// The likelihood-ratio weights integrate to 1 in expectation: the
    /// mean product weight over three independently tilted links passes
    /// a 4σ z-test against 1, for any tilt depth and Gamma shape.
    #[test]
    fn likelihood_weights_integrate_to_one(
        theta in 0.05f64..0.95,
        mi in 0usize..3,
        seed in 0u64..(1 << 32),
    ) {
        const TRIALS: usize = 1500;
        let m = [0.5, 1.0, 3.0][mi];
        let samples = deep_sum_rate_samples(
            &fig4_net(10.0),
            Protocol::DirectTransmission,
            FadingModel::Nakagami { m },
            [PowerTilt::toward(theta); 3],
            &McConfig::new(TRIALS, 0xBEE5_0000 ^ seed),
        );
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&(_, w)| w).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&(_, w)| (w - mean) * (w - mean))
            .sum::<f64>()
            / (n - 1.0);
        let band = 4.0 * (var / n).sqrt() + 1e-3;
        prop_assert!(
            (mean - 1.0).abs() <= band,
            "theta={theta:.3} m={m}: E[w] = {mean:.5} (band {band:.2e})"
        );
    }
}

#[test]
fn golden_dt_deep_tail_matches_closed_form_at_1e6() {
    // DT at 75 dB, r = 0.1: the exact Rayleigh tail sits near 1e-6 —
    // plain MC would need >1e6 trials for a single expected hit, and
    // ~4e8 for 10% relative error. The auto-tilted estimator pins the
    // closed form at 10% relative error from 20k trials.
    const TRIALS: usize = 20_000;
    let net = fig4_net(75.0);
    let scenario = Scenario::at(net)
        .protocols([Protocol::DirectTransmission])
        .multiplexing_gains([0.1])
        .rayleigh(TRIALS, 0xDEE9_0001);
    let deep = DeepSpec::new().force_sampling(true);
    let serial = scenario
        .clone()
        .threads(1)
        .build()
        .deep_outage(&deep)
        .unwrap();
    let parallel = scenario.threads(4).build().deep_outage(&deep).unwrap();
    let cell = serial.cell(Protocol::DirectTransmission, 0, 0);
    assert_eq!(
        cell,
        parallel.cell(Protocol::DirectTransmission, 0, 0),
        "deep tail not thread-invariant"
    );

    let exact = analytic_outage(
        &net,
        Protocol::DirectTransmission,
        FadingModel::Rayleigh,
        serial.target_rate(0, 0),
    )
    .and_then(|t| t.exact())
    .expect("DT Rayleigh tail is closed-form");
    assert!(
        (1e-7..5e-6).contains(&exact),
        "premise: the pin must sit in the deep tail, got {exact:.3e}"
    );

    let p = cell.probability.expect("auto tilt resolves the deep tail");
    let rel = cell.rel_error.expect("resolved");
    assert!(rel <= 0.1, "relative error {rel:.3} above the 10% budget");
    assert!(
        (p - exact).abs() <= 4.0 * rel * exact.max(p),
        "IS {p:.4e} vs exact {exact:.4e} (rel {rel:.3})"
    );
    // The headline claim: the trial budget that resolved this 1e-6 tail
    // is far below what plain MC needs for even one expected hit.
    assert!(
        (cell.trials as f64) < 0.1 / exact,
        "IS used {} trials — no better than plain MC at p = {exact:.2e}",
        cell.trials
    );
    assert!(cell.theta[0] < 1.0, "direct link must be tilted");
}

#[test]
fn golden_relay_tails_land_between_analytic_bounds() {
    // MABC and TDBC have no closed-form outage, but the analytic
    // lower/upper tail bounds must sandwich the high-trial IS estimate
    // (within its own 4σ band) — under Rayleigh and Nakagami fading.
    const TRIALS: usize = 8000;
    let cases = [
        (
            Protocol::Mabc,
            24.0,
            0.15,
            FadingModel::Rayleigh,
            0xDEE9_0002u64,
        ),
        (
            Protocol::Tdbc,
            30.0,
            0.15,
            FadingModel::Rayleigh,
            0xDEE9_0003,
        ),
        (
            Protocol::Mabc,
            20.0,
            0.2,
            FadingModel::Nakagami { m: 2.0 },
            0xDEE9_0004,
        ),
    ];
    for (protocol, p_db, r, model, seed) in cases {
        let net = fig4_net(p_db);
        let mut eval = Scenario::at(net)
            .protocols([protocol])
            .multiplexing_gains([r])
            .fading(model, TRIALS, seed)
            .build();
        let res = eval.deep_outage(&DeepSpec::new()).unwrap();
        let cell = res.cell(protocol, 0, 0);
        let p = cell.probability.expect("auto tilt resolves the tail");
        let rel = cell.rel_error.expect("resolved");
        let tail = analytic_outage(&net, protocol, model, res.target_rate(0, 0))
            .expect("gamma fade powers admit analytic bounds");
        let slack = 4.0 * rel * p + 1e-12;
        assert!(
            tail.lo - slack <= p && p <= tail.hi + slack,
            "{protocol} {model:?} at {p_db} dB: estimate {p:.4e} outside \
             [{:.4e}, {:.4e}] + slack {slack:.2e}",
            tail.lo,
            tail.hi
        );
    }
}

#[test]
fn analytic_slopes_match_cooperative_dmt_asymptotes() {
    // High-SNR asymptotes in the cs/0506018 style at multiplexing gain
    // r: the direct link decays with diversity slope m·(1 − r) (the
    // Nakagami shape multiplies the slope); the MABC lower tail is
    // uplink-limited at m·(1 − r); and the TDBC two-receiver cut event
    // needs *all three* links faded (both cuts share the direct link),
    // so its tail drops at 3·(1 − r) — steeper than the protocol's true
    // diversity, as a lower bound on outage must be.
    let r = 0.25;
    let within = |slope: f64, want: f64, what: &str| {
        assert!(
            (slope - want).abs() <= 0.15 * want,
            "{what}: slope {slope:.3} vs asymptote {want:.3}"
        );
    };
    within(
        analytic_lo_slope(
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            r,
            50.0,
            65.0,
        ),
        1.0 - r,
        "DT Rayleigh",
    );
    within(
        analytic_lo_slope(
            Protocol::DirectTransmission,
            FadingModel::Nakagami { m: 2.0 },
            r,
            50.0,
            65.0,
        ),
        2.0 * (1.0 - r),
        "DT Nakagami-2",
    );
    within(
        analytic_lo_slope(Protocol::Mabc, FadingModel::Rayleigh, r, 50.0, 65.0),
        1.0 - r,
        "MABC Rayleigh",
    );
    within(
        analytic_lo_slope(Protocol::Tdbc, FadingModel::Rayleigh, r, 50.0, 65.0),
        3.0 * (1.0 - r),
        "TDBC Rayleigh",
    );
}

#[test]
fn estimated_diversity_tracks_the_analytic_slope() {
    // The IS-estimated outage curve over an SNR grid reproduces the
    // analytic diversity slopes: DT rides the exact fast path (slope
    // 1 − r to quadrature accuracy), MABC's sampled slope lands between
    // its two bound slopes 1 − 2r and 1 − r.
    let r = 0.25;
    let mut eval = Scenario::power_sweep_db(fig4_net(0.0), [40.0, 55.0])
        .protocols([Protocol::DirectTransmission, Protocol::Mabc])
        .multiplexing_gains([r])
        .rayleigh(4000, 0xDEE9_0005)
        .build();
    let res = eval.deep_outage(&DeepSpec::new()).unwrap();
    let dt = res
        .diversity_fit(Protocol::DirectTransmission, 0)
        .expect("exact cells always resolve");
    assert!(
        (dt - (1.0 - r)).abs() <= 0.05,
        "DT diversity {dt:.3} vs 1 - r = {:.3}",
        1.0 - r
    );
    let mabc = res
        .diversity_fit(Protocol::Mabc, 0)
        .expect("auto tilt resolves both grid points");
    assert!(
        (1.0 - 2.0 * r - 0.2..=1.0 - r + 0.2).contains(&mabc),
        "MABC diversity {mabc:.3} outside bound-slope bracket [{:.2}, {:.2}]",
        1.0 - 2.0 * r,
        1.0 - r
    );
}

#[test]
fn simulator_twin_matches_evaluator_bitwise_at_shared_seed() {
    // Single-cell grid, shared seed, fixed tilt: the serial McConfig
    // driver and the evaluator's block fan-out draw the same tilted
    // streams and reduce in the same trial order, so probability,
    // relative error and ESS must agree bit for bit.
    use bcc::sim::deep::WeightedOutageProfile;
    const TRIALS: usize = 600;
    const SEED: u64 = 0xDEE9_0006;
    let net = fig4_net(30.0);
    let theta = 0.2;
    let mut eval = Scenario::at(net)
        .protocols([Protocol::Mabc])
        .multiplexing_gains([0.15])
        .rayleigh(TRIALS, SEED)
        .build();
    let deep = DeepSpec::new().fixed_tilt([theta; 3]).force_sampling(true);
    let res = eval.deep_outage(&deep).unwrap();
    let cell = res.cell(Protocol::Mabc, 0, 0);

    let tilt = [PowerTilt::new(theta, PowerTilt::DEFAULT_ALPHA); 3];
    let twin = WeightedOutageProfile::estimate(
        &net,
        Protocol::Mabc,
        FadingModel::Rayleigh,
        tilt,
        &McConfig::new(TRIALS, SEED),
    );
    let stats = twin.tail_stats(res.target_rate(0, 0));
    assert_eq!(cell.probability, stats.probability());
    assert_eq!(cell.rel_error, stats.relative_error());
    assert_eq!(cell.hits, stats.hits());
    assert_eq!(cell.ess.to_bits(), stats.ess().to_bits());
}
