//! Integration tests of the general-DMC formulation (paper Sections
//! II–III) against the Gaussian specialisation and against each other.

use bcc::core::discrete::DiscreteNetwork;
use bcc::core::optimizer;
use bcc::core::region::{hull_max_ra, time_sharing_hull, RatePoint, RateRegion};
use bcc::info::{Dmc, Pmf};

fn uniform() -> (Pmf, Pmf, Pmf) {
    (Pmf::uniform(2), Pmf::uniform(2), Pmf::uniform(2))
}

#[test]
fn dmc_protocol_ordering_mirrors_gaussian_structure() {
    // HBC ≥ max(MABC, TDBC) holds in the DMC form for any channel mix.
    for (pd, pup, pmac) in [
        (0.5, 0.05, 0.02),
        (0.05, 0.1, 0.2),
        (0.2, 0.2, 0.2),
        (0.01, 0.01, 0.4),
    ] {
        let net = DiscreteNetwork::binary_symmetric(pd, pup, pup, pmac);
        let (pa, pb, pr) = uniform();
        let hbc = optimizer::max_sum_rate(&net.hbc_inner_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        let mabc = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        let tdbc = optimizer::max_sum_rate(&net.tdbc_inner_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        assert!(
            hbc >= mabc.max(tdbc) - 1e-9,
            "({pd},{pup},{pmac}): HBC {hbc} < max({mabc}, {tdbc})"
        );
    }
}

#[test]
fn perfect_channels_hit_combinatorial_limits() {
    // All binary links perfect: MABC = 2/3 bits/use (1 bit up, 1 bit
    // down, shared); TDBC = 2/3 as well with its three unit-capacity
    // phases (Δ = 1/3 each gives Ra = Rb = 1/3).
    let net = DiscreteNetwork::binary_symmetric(0.0, 0.0, 0.0, 0.0);
    let (pa, pb, pr) = uniform();
    let mabc = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &pr))
        .unwrap()
        .objective;
    assert!((mabc - 2.0 / 3.0).abs() < 1e-9);
    let tdbc = optimizer::max_sum_rate(&net.tdbc_inner_constraints(&pa, &pb, &pr))
        .unwrap()
        .objective;
    // With perfect direct links TDBC skips the relay entirely: Δ3 = 0 and
    // each direction gets half the time at 1 bit/use.
    assert!((tdbc - 1.0).abs() < 1e-9, "TDBC should hit 1.0, got {tdbc}");
}

#[test]
fn dmc_regions_work_with_generic_region_machinery() {
    let net = DiscreteNetwork::binary_symmetric(0.1, 0.05, 0.08, 0.12);
    let (pa, pb, pr) = uniform();
    let region = RateRegion::new(vec![net.mabc_constraints(&pa, &pb, &pr)], "DMC MABC");
    let boundary = region.boundary(16).unwrap();
    assert!(boundary.len() >= 2);
    // All boundary points inside, scaled-up points outside.
    for p in &boundary {
        assert!(region.contains((p.ra - 1e-7).max(0.0), (p.rb - 1e-7).max(0.0)));
        assert!(!region.contains(p.ra * 1.2 + 0.05, p.rb * 1.2 + 0.05));
    }
    // Rates over a binary alphabet cannot exceed 1 bit/use.
    assert!(region.ra_max().unwrap() <= 1.0 + 1e-9);
    assert!(region.rb_max().unwrap() <= 1.0 + 1e-9);
}

#[test]
fn degraded_channels_shrink_the_region() {
    let (pa, pb, pr) = uniform();
    let clean = DiscreteNetwork::binary_symmetric(0.2, 0.02, 0.02, 0.02);
    let noisy = DiscreteNetwork::binary_symmetric(0.2, 0.2, 0.2, 0.2);
    let clean_region = RateRegion::new(vec![clean.mabc_constraints(&pa, &pb, &pr)], "clean");
    let noisy_region = RateRegion::new(vec![noisy.mabc_constraints(&pa, &pb, &pr)], "noisy");
    assert!(clean_region.contains_region(&noisy_region, 12).unwrap());
    assert!(!noisy_region.contains_region(&clean_region, 12).unwrap());
}

#[test]
fn z_channel_broadcast_rewards_biased_relay_input() {
    // Heavily asymmetric broadcast: the capacity-achieving relay input is
    // biased, so a well-chosen bias beats a *badly* chosen one (sanity on
    // the input-distribution dependence the time-sharing API exposes).
    let z = Dmc::z_channel(0.7);
    let net = DiscreteNetwork::new(
        DiscreteNetwork::binary_symmetric(0.3, 0.05, 0.05, 0.05).mac_to_relay,
        Dmc::bsc(0.05),
        Dmc::bsc(0.3),
        Dmc::bsc(0.05),
        Dmc::bsc(0.3),
        z.clone(),
        z,
    );
    let (pa, pb, _) = uniform();
    let good = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &Pmf::bernoulli(0.4)))
        .unwrap()
        .objective;
    let bad = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &Pmf::bernoulli(0.95)))
        .unwrap()
        .objective;
    assert!(
        good > bad,
        "bias 0.4 ({good}) should beat bias 0.95 ({bad})"
    );
}

#[test]
fn hull_api_composes_with_dmc_boundaries() {
    let net = DiscreteNetwork::binary_symmetric(0.15, 0.05, 0.1, 0.1);
    let inputs = vec![
        uniform(),
        (Pmf::bernoulli(0.3), Pmf::uniform(2), Pmf::uniform(2)),
    ];
    let hull = net.mabc_time_sharing_boundary(&inputs, 10);
    // Hull is a valid Pareto frontier: sorted in ra, decreasing rb.
    for w in hull.windows(2) {
        assert!(w[1].ra >= w[0].ra - 1e-12);
        assert!(w[1].rb <= w[0].rb + 1e-12);
    }
    // And the hull evaluator agrees with its own vertices.
    for v in &hull {
        let ra = hull_max_ra(&hull, v.rb).unwrap();
        assert!(ra >= v.ra - 1e-9);
    }
    // Free-disposal sanity on a synthetic point set.
    let hand = time_sharing_hull(&[RatePoint::new(0.4, 0.1), RatePoint::new(0.1, 0.4)]);
    assert!(hull_max_ra(&hand, 0.25).unwrap() >= 0.25 - 1e-9);
}
