//! Golden tests for the finite-SNR DMT / power-allocation layer.
//!
//! These pin the headline *shapes* of the `dmt` study binary
//! (`cargo run --release -p bcc-bench --bin dmt`) on the same canonical
//! configuration (`bcc_bench::dmtstudy`), at a reduced trial count so the
//! suite stays test-budget friendly:
//!
//! * at low multiplexing gain, direct transmission's finite-SNR diversity
//!   slope sits near its single-path value, while the protocols that
//!   exploit the overheard direct link (TDBC, HBC) fall markedly faster —
//!   the relay-aided diversity advantage;
//! * MABC, which never uses the direct link, gains *no* diversity over DT;
//! * on the fully symmetric channel the outage-optimal power split
//!   degenerates to balanced terminals (uniform in `a`/`b`), and the
//!   search never falls below the uniform baseline it always scores.

use bcc::prelude::*;
use bcc_bench::dmtstudy;

/// Trials per grid point for the golden runs (the binary defaults to
/// 4000; the pinned bands below carry the extra Monte-Carlo slack).
const TRIALS: usize = 2500;

#[test]
fn low_multiplexing_diversity_slopes_rank_protocols() {
    let dmt = dmtstudy::dmt_scenario(TRIALS).build().dmt().unwrap();
    // gains[0] = 0.1 is the low-multiplexing column.
    assert_eq!(dmt.gains[0], 0.1);
    let fit = |p| {
        dmt.diversity_fit(p, 0)
            .unwrap_or_else(|| panic!("{p:?} slope must be defined at r = 0.1"))
    };
    let dt = fit(Protocol::DirectTransmission);
    let mabc = fit(Protocol::Mabc);
    let tdbc = fit(Protocol::Tdbc);
    let hbc = fit(Protocol::Hbc);

    // Reference run (4000 trials): DT 0.48, MABC 0.54, TDBC 0.87, HBC 0.85.
    assert!((0.25..=0.75).contains(&dt), "DT slope {dt}");
    assert!((0.25..=0.85).contains(&mabc), "MABC slope {mabc}");
    assert!((0.55..=1.30).contains(&tdbc), "TDBC slope {tdbc}");
    assert!((0.55..=1.30).contains(&hbc), "HBC slope {hbc}");
    // The relay-aided protocols with direct-link side information beat DT
    // by a clear margin; MABC (no direct link) does not.
    assert!(
        tdbc > dt + 0.2 && hbc > dt + 0.2,
        "relay-aided diversity advantage missing: DT {dt}, TDBC {tdbc}, HBC {hbc}"
    );
    assert!(
        mabc < tdbc - 0.15,
        "MABC {mabc} must trail TDBC {tdbc}: it never hears the direct link"
    );
}

#[test]
fn diversity_slopes_decrease_with_multiplexing_gain() {
    // The DMT tradeoff itself: more multiplexing, less diversity.
    let dmt = dmtstudy::dmt_scenario(TRIALS).build().dmt().unwrap();
    for p in [Protocol::DirectTransmission, Protocol::Hbc] {
        let low = dmt.diversity_fit(p, 0).expect("defined at r = 0.1");
        let high = dmt.diversity_fit(p, 2).expect("defined at r = 0.5");
        assert!(
            high < low,
            "{p}: slope at r = 0.5 ({high}) must be below r = 0.1 ({low})"
        );
    }
}

#[test]
fn dmt_outage_levels_match_reference_run() {
    // Pin a few absolute outage levels (±4σ-ish bands around the
    // 4000-trial reference run) so a silent rescaling of targets or SNRs
    // cannot pass the shape tests above.
    let dmt = dmtstudy::dmt_scenario(TRIALS).build().dmt().unwrap();
    // DT at r = 0.5: reference 0.3285 (0 dB) and 0.0848 (20 dB).
    let dt = dmt.outage(Protocol::DirectTransmission, 2);
    assert!(
        (dt[0] - 0.3285).abs() < 0.04,
        "DT outage at 0 dB: {}",
        dt[0]
    );
    assert!(
        (dt[5] - 0.0848).abs() < 0.025,
        "DT outage at 20 dB: {}",
        dt[5]
    );
    // Analytic cross-check: DT outage = P[Exp(1) < ((1+SNR)^r − 1)/SNR].
    for (k, &snr) in dmt.snrs.iter().enumerate() {
        let g = ((1.0 + snr).powf(0.5) - 1.0) / snr;
        let exact = 1.0 - (-g).exp();
        assert!(
            (dt[k] - exact).abs() < 0.04,
            "DT outage at point {k}: MC {} vs analytic {exact}",
            dt[k]
        );
    }
}

#[test]
fn symmetric_channel_allocation_degenerates_to_uniform_balance() {
    let alloc = dmtstudy::allocation_scenario(1500)
        .build()
        .allocation(dmtstudy::EPS)
        .unwrap();
    for a in alloc.entries() {
        let balance = a.split.terminal_balance();
        assert!(
            (balance - 0.5).abs() < 0.12,
            "{}: terminal balance {balance} should degenerate to 1/2 on a symmetric channel",
            a.protocol
        );
        assert!(
            a.value >= a.uniform_value,
            "{}: search fell below the uniform baseline",
            a.protocol
        );
        assert!(
            (a.split.total() - alloc.total_power).abs() < 1e-9 * alloc.total_power,
            "{}: budget violated",
            a.protocol
        );
    }
    // Protocol-specific physics: DT starves the relay; MABC (whose relay
    // must broadcast everything) keeps a markedly larger relay share than
    // the side-information protocols.
    let dt = alloc.get(Protocol::DirectTransmission).unwrap();
    assert!(
        dt.split.relay_share() < 0.1,
        "DT relay share {}",
        dt.split.relay_share()
    );
    let mabc = alloc.get(Protocol::Mabc).unwrap();
    let tdbc = alloc.get(Protocol::Tdbc).unwrap();
    assert!(
        mabc.split.relay_share() > tdbc.split.relay_share(),
        "MABC relay share {} should exceed TDBC's {}",
        mabc.split.relay_share(),
        tdbc.split.relay_share()
    );
}
