//! Coverage for the batch engine's infeasible-solve path (PR 2): a sweep
//! with a deliberately infeasible grid point must record the skip
//! ([`SweepResult::skipped`]), leave NaN placeholders in the series, and
//! report `Option`-valued winners — never abort the batch.
//!
//! Infeasibility is reached through the public API via the QoS
//! [`Scenario::rate_floor`]: a per-user floor above what an operating
//! point supports makes that point's LP genuinely infeasible.

use bcc::prelude::*;

fn fig4_net(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

#[test]
fn fully_infeasible_point_yields_none_winner_and_nan_series() {
    // −20 dB supports nothing at a 2-bit/user floor; 25 dB supports the
    // relay protocols.
    let sweep = Scenario::power_sweep_db(fig4_net(0.0), [-20.0, 25.0])
        .rate_floor(2.0, 2.0)
        .build()
        .sweep()
        .unwrap();
    assert!(!sweep.is_complete());
    assert_eq!(sweep.winners().len(), 2);
    assert_eq!(sweep.try_winner(0), None);
    assert_eq!(sweep.winners()[0], None);
    assert!(sweep.winners()[1].is_some());
    // Every protocol's slot at the dead point is a NaN placeholder…
    for p in Protocol::ALL {
        let sol = &sweep.series(p).unwrap().solutions[0];
        assert!(sol.sum_rate.is_nan() && sol.ra.is_nan() && sol.rb.is_nan());
        assert!(sol.durations.is_empty());
    }
    // …and each one is accounted for in skipped(), as an infeasibility.
    let at_dead_point: Vec<_> = sweep.skipped().iter().filter(|s| s.index == 0).collect();
    assert_eq!(at_dead_point.len(), Protocol::ALL.len());
    for skip in sweep.skipped() {
        assert!(skip.error.is_infeasible());
        assert_eq!(skip.x, -20.0);
    }
}

#[test]
#[should_panic(expected = "skipped as infeasible")]
fn winner_panics_exactly_where_try_winner_is_none() {
    let sweep = Scenario::power_sweep_db(fig4_net(0.0), [-20.0])
        .rate_floor(2.0, 2.0)
        .build()
        .sweep()
        .unwrap();
    let _ = sweep.winner(0);
}

#[test]
fn partially_infeasible_point_keeps_feasible_winners() {
    // A floor DT cannot meet at 10 dB (its capacity region tops out near
    // 1.58 bits total) while every relay protocol can.
    let sweep = Scenario::power_sweep_db(fig4_net(0.0), [10.0])
        .rate_floor(0.85, 0.85)
        .build()
        .sweep()
        .unwrap();
    assert_eq!(sweep.skipped().len(), 1, "only DT should skip");
    assert_eq!(sweep.skipped()[0].protocol, Protocol::DirectTransmission);
    assert!(sweep.skipped()[0].error.is_infeasible());
    let winner = sweep.try_winner(0).expect("relay protocols feasible");
    assert_ne!(winner, Protocol::DirectTransmission);
    // Feasible entries respect the floor.
    for p in [Protocol::Mabc, Protocol::Tdbc, Protocol::Hbc] {
        let sol = &sweep.series(p).unwrap().solutions[0];
        assert!(sol.ra >= 0.85 - 1e-8, "{p}: ra {}", sol.ra);
        assert!(sol.rb >= 0.85 - 1e-8, "{p}: rb {}", sol.rb);
    }
    // DT's NaN never leaks into strict-wins comparisons.
    assert!(sweep
        .strict_wins(Protocol::DirectTransmission, 1e-9)
        .is_empty());
}

/// Bit-identity for sweeps that may carry NaN skip placeholders (derived
/// `PartialEq` would fail on NaN ≠ NaN even for identical results).
fn assert_sweeps_identical(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.xs, b.xs);
    assert_eq!(a.winners(), b.winners());
    assert_eq!(a.skipped(), b.skipped());
    assert_eq!(a.protocols(), b.protocols());
    for &p in a.protocols() {
        let (sa, sb) = (a.series(p).unwrap(), b.series(p).unwrap());
        for (x, y) in sa.solutions.iter().zip(&sb.solutions) {
            let same = (x.sum_rate.is_nan() && y.sum_rate.is_nan())
                || (x.sum_rate == y.sum_rate && x.ra == y.ra && x.rb == y.rb);
            assert!(same, "{p}: {x:?} vs {y:?}");
            assert_eq!(x.durations, y.durations, "{p}");
        }
    }
}

#[test]
fn skip_bookkeeping_is_thread_invariant() {
    let scenario = Scenario::power_sweep_db(fig4_net(0.0), (-20..=20).step_by(5).map(f64::from))
        .rate_floor(1.2, 1.2);
    let serial = scenario.clone().threads(1).build().sweep().unwrap();
    for threads in [2, 4] {
        let par = scenario.clone().threads(threads).build().sweep().unwrap();
        assert_sweeps_identical(&serial, &par);
    }
    assert!(!serial.is_complete());
    // Winners and skips agree index-by-index.
    for (i, w) in serial.winners().iter().enumerate() {
        let all_skipped =
            serial.skipped().iter().filter(|s| s.index == i).count() == Protocol::ALL.len();
        assert_eq!(w.is_none(), all_skipped, "point {i}");
    }
}

#[test]
fn rate_floor_applies_to_outer_bound_families_too() {
    // The HBC outer bound is a ρ-family: with a floor, individual members
    // may be infeasible while the family still produces an optimum, and a
    // floor above the whole family must skip, not abort.
    let feasible = Scenario::power_sweep_db(fig4_net(0.0), [10.0])
        .protocols([Protocol::Hbc])
        .bound(Bound::Outer)
        .rate_floor(0.5, 0.5)
        .build()
        .sweep()
        .unwrap();
    assert!(feasible.is_complete());
    let sol = &feasible.series(Protocol::Hbc).unwrap().solutions[0];
    assert!(sol.ra >= 0.5 - 1e-8 && sol.rb >= 0.5 - 1e-8);

    let impossible = Scenario::power_sweep_db(fig4_net(0.0), [10.0])
        .protocols([Protocol::Hbc])
        .bound(Bound::Outer)
        .rate_floor(50.0, 50.0)
        .build()
        .sweep()
        .unwrap();
    assert_eq!(impossible.try_winner(0), None);
    assert_eq!(impossible.skipped().len(), 1);
}
