//! Differential proptests: the `K = 1` multi-pair path must be **bitwise
//! identical** to the single-pair `Evaluator` it generalises.
//!
//! The multi-pair evaluator flattens a `point × pair × protocol` job
//! grid over per-worker [`SolveCtx`]s and nests per-pair fade streams
//! into the seeding policy; the single-pair evaluator predates all of
//! that. For one pair the two *must* collapse to the same arithmetic —
//! same solver dispatch (kernel vs warm simplex), same seed streams,
//! same fade-drawing order — so every result is compared here down to
//! the bit pattern (`f64::to_bits`, stricter than `==`, which would
//! accept `-0.0 == 0.0`), across random grids, power splits, fading
//! models, bound sides and worker counts {1, 4}.

use bcc::prelude::*;
use proptest::prelude::*;

/// Bit-pattern equality for solution components.
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{what}: {a:.17e} vs {b:.17e} differ bitwise"
    );
}

fn random_net(p: (f64, f64, f64), g: (f64, f64, f64)) -> GaussianNetwork {
    GaussianNetwork::with_powers(
        PowerSplit::new(p.0, p.1, p.2),
        ChannelState::new(g.0, g.1, g.2),
    )
}

/// The single-pair scenario and its K = 1 multi-pair twin over the same
/// `(x, network)` grid.
fn twin_scenarios(
    grid: &[(f64, GaussianNetwork)],
    bound: Bound,
    threads: usize,
) -> (Evaluator, MultiPairEvaluator) {
    let single = Scenario::networks("x", grid.iter().copied())
        .bound(bound)
        .threads(threads)
        .build();
    let multi = Scenario::pairs(
        "x",
        grid.iter().map(|&(x, net)| (x, PairSet::new(vec![net]))),
    )
    .bound(bound)
    .threads(threads)
    .build();
    (single, multi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn k1_sweep_is_bitwise_identical_to_single_pair(
        base_p in (0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0),
        g in (0.01f64..10.0, 0.01f64..10.0, 0.01f64..10.0),
        scale in 1.1f64..8.0,
        npoints in 2usize..5,
        outer_pick in 0usize..2,
    ) {
        let bound = if outer_pick == 1 { Bound::Outer } else { Bound::Inner };
        let grid: Vec<(f64, GaussianNetwork)> = (0..npoints)
            .map(|i| {
                let f = scale.powi(i as i32);
                (i as f64, random_net((base_p.0 * f, base_p.1 * f, base_p.2 * f), g))
            })
            .collect();
        for threads in [1usize, 4] {
            let (mut single, mut multi) = twin_scenarios(&grid, bound, threads);
            let sweep = single.sweep().unwrap();
            let msweep = multi.sweep().unwrap();
            prop_assert_eq!(msweep.num_pairs(), 1);
            for proto in Protocol::ALL {
                let series = &sweep.series(proto).unwrap().solutions;
                for (i, sol) in series.iter().enumerate() {
                    let m = &msweep.solution(proto, i, 0).sum;
                    assert_bits(m.sum_rate, sol.sum_rate, "sum_rate");
                    assert_bits(m.ra, sol.ra, "ra");
                    assert_bits(m.rb, sol.rb, "rb");
                    prop_assert_eq!(m.durations.len(), sol.durations.len());
                    for (l, (&a, &b)) in m.durations.iter().zip(sol.durations.iter()).enumerate() {
                        assert_bits(a, b, &format!("duration {l}"));
                    }
                    // Both schedules degenerate to the pair's own rate.
                    for schedule in SCHEDULES {
                        assert_bits(
                            msweep.sum_rate(proto, i, schedule),
                            sol.sum_rate,
                            "K=1 schedule aggregate",
                        );
                    }
                    // The K = 1 fair aggregates coincide with each other
                    // (and with the pair's max-min rate) exactly.
                    assert_bits(
                        msweep.fair_rate(proto, i, Schedule::Joint),
                        msweep.fair_rate(proto, i, Schedule::TimeShare),
                        "K=1 fair aggregate",
                    );
                }
            }
        }
    }

    #[test]
    fn k1_outage_is_bitwise_identical_to_single_pair(
        p in (0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0),
        g in (0.01f64..10.0, 0.01f64..10.0, 0.01f64..10.0),
        seed in 0u64..0xFFFF_FFFF,
        trials in 5usize..40,
        npoints in 1usize..3,
        model_pick in 0usize..3,
    ) {
        let model = match model_pick {
            0 => FadingModel::None,
            1 => FadingModel::Rayleigh,
            _ => FadingModel::Nakagami { m: 2.5 },
        };
        let grid: Vec<(f64, GaussianNetwork)> = (0..npoints)
            .map(|i| (i as f64, random_net(p, (g.0 + i as f64, g.1, g.2))))
            .collect();
        for threads in [1usize, 4] {
            let single = Scenario::networks("x", grid.iter().copied())
                .fading(model, trials, seed)
                .threads(threads)
                .build()
                .outage()
                .unwrap();
            let multi = Scenario::pairs(
                "x",
                grid.iter().map(|&(x, net)| (x, PairSet::new(vec![net]))),
            )
            .fading(model, trials, seed)
            .threads(threads)
            .build()
            .outage()
            .unwrap();
            for proto in Protocol::ALL {
                for i in 0..grid.len() {
                    let a = single.samples(proto, i);
                    let b = multi.samples(proto, i, 0);
                    prop_assert_eq!(a.len(), b.len());
                    for (t, (&x, &y)) in a.iter().zip(b).enumerate() {
                        assert_bits(y, x, &format!("{proto} point {i} trial {t}"));
                    }
                }
            }
        }
    }
}

/// The reduction also holds through the *simulator-side* multi-pair
/// path: `K = 1` `multi_pair_samples` equals the classic single-pair
/// sample stream bit for bit (non-random pin at the canonical network;
/// the stream nesting has no randomness to hide behind).
#[test]
fn k1_sim_path_reduces_to_classic_stream() {
    let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
    let cfg = McConfig::new(80, 0xDEC0DE);
    for proto in Protocol::ALL {
        let classic = bcc::sim::ergodic::sum_rate_samples(&net, proto, FadingModel::Rayleigh, &cfg);
        let multi = bcc::sim::multipair::multi_pair_samples(
            &PairSet::new(vec![net]),
            proto,
            FadingModel::Rayleigh,
            &cfg,
        );
        assert_eq!(multi.len(), 1);
        for (t, (&a, &b)) in classic.iter().zip(&multi[0]).enumerate() {
            assert_bits(b, a, &format!("{proto} trial {t}"));
        }
    }
}
