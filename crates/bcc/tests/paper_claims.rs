//! Integration tests pinning the paper's headline claims (DESIGN.md F1-F3)
//! across crate boundaries. These are the tests a reviewer would read to
//! decide whether the reproduction holds.

use bcc::core::comparison::{hbc_outside_competitor_outer_bounds, sum_rate_crossover_db};
use bcc::prelude::*;

/// Fig. 4 network (see DESIGN.md for the gain-caption reading).
fn fig4(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

#[test]
fn f1_hbc_sum_rate_dominates_everywhere() {
    // F1: HBC ≥ max(MABC, TDBC) for every power; strictly greater
    // somewhere. One batched power sweep covers the whole claim.
    let sweep = Scenario::power_sweep_db(fig4(0.0), (-10..=25).map(f64::from))
        .build()
        .sweep()
        .unwrap();
    for i in 0..sweep.len() {
        let hbc = sweep.series(Protocol::Hbc).unwrap().solutions[i].sum_rate;
        let mabc = sweep.series(Protocol::Mabc).unwrap().solutions[i].sum_rate;
        let tdbc = sweep.series(Protocol::Tdbc).unwrap().solutions[i].sum_rate;
        let p = sweep.xs[i];
        assert!(hbc >= mabc - 1e-8, "P={p}: HBC {hbc} < MABC {mabc}");
        assert!(hbc >= tdbc - 1e-8, "P={p}: HBC {hbc} < TDBC {tdbc}");
    }
    assert!(
        !sweep.strict_wins(Protocol::Hbc, 1e-6).is_empty() || {
            // HBC must at least strictly beat its two special cases
            // somewhere (DT may coincide with the winner at low SNR).
            (0..sweep.len()).any(|i| {
                let hbc = sweep.series(Protocol::Hbc).unwrap().solutions[i].sum_rate;
                let mabc = sweep.series(Protocol::Mabc).unwrap().solutions[i].sum_rate;
                let tdbc = sweep.series(Protocol::Tdbc).unwrap().solutions[i].sum_rate;
                hbc > mabc.max(tdbc) + 1e-6
            })
        },
        "HBC must be strictly better in some regime (paper Fig. 3)"
    );
}

#[test]
fn f2_mabc_tdbc_snr_reversal() {
    // F2: MABC dominates at low SNR, TDBC at high SNR, with a crossover.
    let net = fig4(0.0);
    let duel = Scenario::power_sweep_db(net, [0.0, 20.0])
        .protocols([Protocol::Mabc, Protocol::Tdbc])
        .build()
        .sweep()
        .unwrap();
    assert_eq!(duel.winner(0), Protocol::Mabc);
    assert_eq!(duel.winner(1), Protocol::Tdbc);
    let cross = sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)
        .unwrap()
        .expect("a crossover exists at Fig. 4 gains");
    assert!(
        cross.value() > 0.0 && cross.value() < 20.0,
        "crossover {cross} should sit between the two panels of Fig. 4"
    );
}

#[test]
fn f3_hbc_escapes_both_outer_bounds_at_high_snr() {
    // F3: at P = 10 dB, some HBC achievable points lie outside the outer
    // bounds of both MABC and TDBC — the paper's most surprising claim.
    let violations = hbc_outside_competitor_outer_bounds(&fig4(10.0), 48).unwrap();
    let outside_mabc = violations.iter().any(|v| v.victim == Protocol::Mabc);
    let outside_tdbc = violations.iter().any(|v| v.victim == Protocol::Tdbc);
    assert!(outside_mabc, "no HBC point escaped the MABC outer bound");
    assert!(outside_tdbc, "no HBC point escaped the TDBC outer bound");
}

#[test]
fn mabc_region_is_exactly_its_capacity() {
    // Theorem 2: inner = outer for MABC.
    let net = fig4(10.0);
    let inner = net.region(Protocol::Mabc, Bound::Inner);
    let outer = net.region(Protocol::Mabc, Bound::Outer);
    assert!(inner.contains_region(&outer, 24).unwrap());
    assert!(outer.contains_region(&inner, 24).unwrap());
    assert!(net.capacity_region(Protocol::Mabc).is_some());
    assert!(
        net.capacity_region(Protocol::Tdbc).is_none(),
        "TDBC capacity is open"
    );
}

#[test]
fn inner_bounds_inside_outer_bounds() {
    for p_db in [0.0, 10.0] {
        let net = fig4(p_db);
        for proto in [Protocol::Tdbc, Protocol::Hbc] {
            let inner = net.region(proto, Bound::Inner);
            let outer = net.region(proto, Bound::Outer);
            assert!(
                outer.contains_region(&inner, 24).unwrap(),
                "{proto} inner escaped its outer bound at P = {p_db} dB"
            );
        }
    }
}

#[test]
fn relayed_protocols_beat_dt_when_relay_helps() {
    // With both relay links much stronger than the direct link, every
    // relayed protocol must beat direct transmission.
    let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-10.0), Db::new(5.0), Db::new(5.0));
    let dt = net
        .max_sum_rate(Protocol::DirectTransmission)
        .unwrap()
        .sum_rate;
    for proto in Protocol::RELAYED {
        let sr = net.max_sum_rate(proto).unwrap().sum_rate;
        assert!(sr > dt, "{proto}: {sr} should beat DT {dt}");
    }
}

#[test]
fn tdbc_dominates_dt_exactly_when_relay_advantaged() {
    // In the paper's "interesting case" (G_ab ≤ G_ar, G_br), TDBC with
    // Δ3 = 0 degenerates to DT, so its optimum dominates DT.
    for (gab, gar, gbr) in [(0.0, 5.0, 5.0), (-7.0, 0.0, 5.0), (-3.0, -3.0, 10.0)] {
        let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(gab), Db::new(gar), Db::new(gbr));
        assert!(net.state().relay_advantaged());
        let dt = net
            .max_sum_rate(Protocol::DirectTransmission)
            .unwrap()
            .sum_rate;
        let tdbc = net.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
        assert!(
            tdbc >= dt - 1e-8,
            "TDBC {tdbc} < DT {dt} at ({gab},{gar},{gbr})"
        );
    }
    // But NOT in general: Theorem 3 makes the relay decode both messages
    // (decode-and-forward), so with dead relay links the relay-decoding
    // constraints strangle TDBC while DT is unaffected. This is a real
    // property of DF protocols, not a bug.
    let dead_relay =
        GaussianNetwork::from_db(Db::new(10.0), Db::new(0.0), Db::new(-20.0), Db::new(-20.0));
    let dt = dead_relay
        .max_sum_rate(Protocol::DirectTransmission)
        .unwrap()
        .sum_rate;
    let tdbc = dead_relay.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
    assert!(
        tdbc < dt,
        "a decode-and-forward relay with dead links must hurt: TDBC {tdbc} vs DT {dt}"
    );
}

#[test]
fn swapping_terminals_swaps_rates() {
    // The protocols are symmetric in (a ↔ b, G_ar ↔ G_br).
    let net = fig4(10.0);
    let swapped = GaussianNetwork::new(
        net.power().expect("symmetric network"),
        net.state().swapped(),
    );
    for proto in Protocol::ALL {
        let orig = net.max_sum_rate(proto).unwrap();
        let swap = swapped.max_sum_rate(proto).unwrap();
        assert!(
            (orig.sum_rate - swap.sum_rate).abs() < 1e-8,
            "{proto}: sum rate must be invariant under terminal swap"
        );
        // The sum-rate LP can have non-unique optima (DT's is a whole
        // face), so individual rates need not swap — but the mirrored
        // point must be achievable in the swapped network.
        let region = swapped.region(proto, Bound::Inner);
        assert!(
            region.contains((orig.rb - 1e-6).max(0.0), (orig.ra - 1e-6).max(0.0)),
            "{proto}: mirrored optimum not achievable after swap"
        );
    }
}

#[test]
fn paper_fig4_sum_rate_values_are_locked() {
    // Regression lock on the reproduced Fig. 4 optima (bits/use). These are
    // *our* computed values, recorded in EXPERIMENTS.md; the test guards
    // against silent regressions of the bound formulas. The same values
    // are locked through the batch evaluator in tests/scenario_golden.rs —
    // this copy pins the direct single-network path.
    let net = fig4(10.0);
    let expect = [
        (Protocol::DirectTransmission, 1.5827),
        (Protocol::Mabc, 3.3053),
        (Protocol::Tdbc, 3.0570),
        (Protocol::Hbc, 3.3313),
    ];
    for (proto, val) in expect {
        let sr = net.max_sum_rate(proto).unwrap().sum_rate;
        assert!(
            (sr - val).abs() < 5e-4,
            "{proto}: {sr:.4} drifted from locked value {val}"
        );
    }
}
