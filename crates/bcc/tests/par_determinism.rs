//! The parallel-evaluation determinism suite: every batch driver must
//! produce **bit-identical** output at every worker count. This is the
//! contract that makes `BCC_THREADS=1` a drop-in oracle for any parallel
//! run — and what lets the bench harness compare serial and parallel
//! modes as pure wall-time. Worker counts are pinned through the
//! `Scenario::threads` builder here; the `BCC_THREADS` env-var route is
//! covered by `par_env.rs` in its own process (mutating the environment
//! of a multi-threaded test binary is not safe).
//!
//! (All assertions here are exact `==` on full result values, not
//! tolerance comparisons: the parallel engine reorders *scheduling*, never
//! arithmetic.)

use bcc::prelude::*;
use bcc_sim::ergodic::sum_rate_samples;
use bcc_sim::McConfig;
use rand::Rng;

fn fig4_net(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

fn sweep_scenario() -> Scenario {
    Scenario::power_sweep_db(fig4_net(0.0), (-10..=25).map(f64::from))
}

fn outage_scenario() -> Scenario {
    Scenario::symmetric_gain_sweep_db(15.0, 0.0, [0.0, 10.0, 20.0]).rayleigh(60, 0xDEAD_BEEF)
}

#[test]
fn sweep_bit_identical_across_worker_counts() {
    let serial = sweep_scenario().threads(1).build().sweep().unwrap();
    for threads in [2, 8] {
        let par = sweep_scenario().threads(threads).build().sweep().unwrap();
        assert_eq!(serial, par, "sweep at {threads} workers");
    }
}

#[test]
fn outage_bit_identical_across_worker_counts() {
    let serial = outage_scenario().threads(1).build().outage().unwrap();
    for threads in [2, 8] {
        let par = outage_scenario().threads(threads).build().outage().unwrap();
        assert_eq!(serial, par, "outage at {threads} workers");
        for p in Protocol::ALL {
            for j in 0..3 {
                assert_eq!(serial.samples(p, j), par.samples(p, j));
            }
        }
    }
}

#[test]
fn comparisons_and_regions_bit_identical_across_worker_counts() {
    let grid = || Scenario::power_sweep_db(fig4_net(0.0), [0.0, 5.0, 10.0]);
    let cmp1 = grid().threads(1).build().comparisons().unwrap();
    let reg1 = grid().threads(1).build().regions(12).unwrap();
    for threads in [2, 8] {
        assert_eq!(cmp1, grid().threads(threads).build().comparisons().unwrap());
        assert_eq!(reg1, grid().threads(threads).build().regions(12).unwrap());
    }
}

#[test]
fn monte_carlo_samples_identical_serial_and_parallel() {
    // The bcc-sim fading front-end rides the same engine: per-trial seed
    // streams make the fan-out invisible in the samples.
    let net = fig4_net(10.0);
    let cfg = McConfig::new(300, 21);
    let a = sum_rate_samples(&net, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
    let b = sum_rate_samples(&net, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
    assert_eq!(a, b);
    // And a raw run/run_par pair on the shared driver.
    let serial = cfg.run(|rng, _| rng.gen::<f64>());
    let par = cfg.run_par(|rng, _| rng.gen::<f64>());
    assert_eq!(serial.mean(), par.mean());
}
