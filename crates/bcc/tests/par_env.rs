//! The `BCC_THREADS` half of the determinism suite, isolated in its own
//! test binary: `std::env::set_var` racing a concurrent `getenv` (which
//! `par::thread_count` performs on every batch) is undefined behavior on
//! glibc, so the env-mutating assertions must be the *only* test in their
//! process — libtest then has nothing to run them in parallel with.
//! Builder-override determinism lives in `par_determinism.rs`.

use bcc::prelude::*;

fn fig4_net(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

fn sweep_scenario() -> Scenario {
    Scenario::power_sweep_db(fig4_net(0.0), (-10..=25).map(f64::from))
}

fn outage_scenario() -> Scenario {
    Scenario::symmetric_gain_sweep_db(15.0, 0.0, [0.0, 10.0, 20.0]).rayleigh(60, 0xDEAD_BEEF)
}

/// `BCC_THREADS` must steer the ambient worker count without changing any
/// result.
#[test]
fn bcc_threads_env_var_is_respected_and_result_invariant() {
    let baseline_sweep = sweep_scenario().threads(1).build().sweep().unwrap();
    let baseline_outage = outage_scenario().threads(1).build().outage().unwrap();
    let previous = std::env::var("BCC_THREADS").ok();
    for setting in ["1", "2", "8"] {
        std::env::set_var("BCC_THREADS", setting);
        let mut ev = sweep_scenario().build();
        assert_eq!(
            ev.thread_count(),
            setting.parse::<usize>().unwrap(),
            "BCC_THREADS={setting} not picked up"
        );
        assert_eq!(
            baseline_sweep,
            ev.sweep().unwrap(),
            "sweep under BCC_THREADS={setting}"
        );
        assert_eq!(
            baseline_outage,
            outage_scenario().build().outage().unwrap(),
            "outage under BCC_THREADS={setting}"
        );
    }
    match previous {
        Some(v) => std::env::set_var("BCC_THREADS", v),
        None => std::env::remove_var("BCC_THREADS"),
    }
}
