//! End-to-end pipeline tests: the stochastic simulators against the
//! analytic machinery they are supposed to validate.

use bcc::channel::fading::FadingModel;
use bcc::channel::ChannelState;
use bcc::core::gaussian::GaussianNetwork;
use bcc::core::protocol::Protocol;
use bcc::num::quadrature::ergodic_rayleigh_capacity;
use bcc::sim::ergodic::ergodic_sum_rate;
use bcc::sim::outage::OutageProfile;
use bcc::sim::packet::{simulate_exchange, ErasureNetwork, RelayScheme};
use bcc::sim::symbol::{run_mabc_exchange, SymbolSimConfig};
use bcc::sim::McConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig4(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::new(
        10f64.powf(p_db / 10.0),
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
    )
}

#[test]
fn ergodic_dt_agrees_with_quadrature() {
    let net = fig4(10.0);
    let est = ergodic_sum_rate(
        &net,
        Protocol::DirectTransmission,
        FadingModel::Rayleigh,
        &McConfig::new(30_000, 1),
    );
    let exact =
        ergodic_rayleigh_capacity(net.power().expect("symmetric network") * net.state().gab());
    assert!(
        est.confidence(0.999).contains(exact),
        "MC {} vs quadrature {exact}",
        est.mean()
    );
}

#[test]
fn packet_throughput_below_bound_and_beats_forwarding() {
    let net = ErasureNetwork::new(0.3, 0.8, 0.6);
    let bound = net.xor_relay_bound();
    let mut rng = StdRng::seed_from_u64(100);
    let xor = simulate_exchange(&net, RelayScheme::XorNetworkCoding, 5000, &mut rng);
    let mut rng = StdRng::seed_from_u64(100);
    let fwd = simulate_exchange(&net, RelayScheme::PlainForwarding, 5000, &mut rng);
    assert!(xor.sum_throughput <= bound + 1e-12);
    assert!(xor.sum_throughput > fwd.sum_throughput);
    // The stop-and-wait scheme with these link qualities lands in a known
    // band below the bound.
    assert!(
        xor.sum_throughput > 0.85 * bound,
        "{} vs {bound}",
        xor.sum_throughput
    );
}

#[test]
fn symbol_level_waterfall_is_monotone() {
    let mut last = f64::INFINITY;
    for p_db in [0.0, 5.0, 10.0] {
        let cfg = SymbolSimConfig {
            power: 10f64.powf(p_db / 10.0),
            state: ChannelState::new(0.2, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(55);
        let r = run_mabc_exchange(&cfg, 1200, &mut rng);
        assert!(
            r.error_rate() <= last + 0.02,
            "error rate rose with SNR at {p_db} dB"
        );
        last = r.error_rate();
    }
    assert!(
        last < 0.01,
        "high-SNR exchange should be near error-free: {last}"
    );
}

#[test]
fn outage_rates_ordered_by_quantile() {
    let profile = OutageProfile::estimate(
        &fig4(10.0),
        Protocol::Hbc,
        FadingModel::Rayleigh,
        &McConfig::new(2000, 9),
    );
    let r05 = profile.outage_rate(0.05).expect("resolved at 2000 trials");
    let r10 = profile.outage_rate(0.10).expect("resolved at 2000 trials");
    let r50 = profile.outage_rate(0.50).expect("resolved at 2000 trials");
    assert!(
        r05 <= r10 && r10 <= r50,
        "quantiles must be monotone: {r05} {r10} {r50}"
    );
    // The ergodic mean sits between the median and the no-fading optimum.
    let exact = fig4(10.0).max_sum_rate(Protocol::Hbc).unwrap().sum_rate;
    assert!(r50 < exact);
}

#[test]
fn ergodic_ordering_matches_deterministic_ordering_at_high_snr() {
    // At 20 dB the deterministic ordering is TDBC > MABC; the fading
    // average preserves it (checked with shared fade streams).
    let net = fig4(20.0);
    let cfg = McConfig::new(3000, 31);
    let tdbc = ergodic_sum_rate(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg);
    let mabc = ergodic_sum_rate(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg);
    assert!(tdbc.mean() > mabc.mean());
}
