//! Property-based integration tests: structural invariants of the bounds
//! over random channel states and powers.

use bcc::core::gaussian::GaussianNetwork;
use bcc::core::protocol::{Bound, Protocol};
use bcc::num::Db;
use proptest::prelude::*;

fn random_network() -> impl Strategy<Value = GaussianNetwork> {
    // Powers -10..20 dB, gains -15..15 dB.
    (
        -10.0f64..20.0,
        -15.0f64..15.0,
        -15.0f64..15.0,
        -15.0f64..15.0,
    )
        .prop_map(|(p, gab, gar, gbr)| {
            GaussianNetwork::from_db(Db::new(p), Db::new(gab), Db::new(gar), Db::new(gbr))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hbc_dominates_special_cases(net in random_network()) {
        let hbc = net.max_sum_rate(Protocol::Hbc).unwrap().sum_rate;
        let mabc = net.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        let tdbc = net.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
        prop_assert!(hbc >= mabc - 1e-7, "HBC {hbc} < MABC {mabc}");
        prop_assert!(hbc >= tdbc - 1e-7, "HBC {hbc} < TDBC {tdbc}");
    }

    #[test]
    fn tdbc_dominates_dt_in_the_interesting_case(net in random_network()) {
        // Only guaranteed when both relay links are at least as strong as
        // the direct link (the decode-and-forward relay otherwise becomes
        // the bottleneck — see tests/paper_claims.rs).
        prop_assume!(net.state().relay_advantaged());
        let tdbc = net.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
        let dt = net.max_sum_rate(Protocol::DirectTransmission).unwrap().sum_rate;
        prop_assert!(tdbc >= dt - 1e-7);
    }

    #[test]
    fn sum_rate_monotone_in_power(net in random_network(), boost in 0.1f64..10.0) {
        let bigger = net.with_power(net.power().expect("symmetric network") * (1.0 + boost));
        for proto in Protocol::ALL {
            let lo = net.max_sum_rate(proto).unwrap().sum_rate;
            let hi = bigger.max_sum_rate(proto).unwrap().sum_rate;
            prop_assert!(hi >= lo - 1e-7, "{proto}: power up, rate down ({lo} -> {hi})");
        }
    }

    #[test]
    fn optimum_point_is_in_region(net in random_network()) {
        for proto in Protocol::ALL {
            let sol = net.max_sum_rate(proto).unwrap();
            let region = net.region(proto, Bound::Inner);
            // Slightly shrunk to absorb LP tolerance.
            prop_assert!(
                region.contains((sol.ra - 1e-6).max(0.0), (sol.rb - 1e-6).max(0.0)),
                "{proto}: optimal point outside its own region"
            );
        }
    }

    #[test]
    fn terminal_swap_symmetry(net in random_network()) {
        let swapped = GaussianNetwork::new(net.power().expect("symmetric network"), net.state().swapped());
        for proto in Protocol::ALL {
            let a = net.max_sum_rate(proto).unwrap().sum_rate;
            let b = swapped.max_sum_rate(proto).unwrap().sum_rate;
            prop_assert!((a - b).abs() < 1e-7, "{proto}: {a} vs swapped {b}");
        }
    }

    #[test]
    fn outer_bound_sum_rate_dominates_inner(net in random_network()) {
        for proto in [Protocol::Tdbc, Protocol::Hbc] {
            let inner = net.region(proto, Bound::Inner).max_sum_rate().unwrap();
            let outer = net.region(proto, Bound::Outer).max_sum_rate().unwrap();
            prop_assert!(outer >= inner - 1e-7, "{proto}: outer {outer} < inner {inner}");
        }
    }

    #[test]
    fn boundary_points_achievable_and_maximal(net in random_network()) {
        let region = net.region(Protocol::Tdbc, Bound::Inner);
        let pts = region.boundary(8).unwrap();
        for p in pts {
            prop_assert!(region.contains((p.ra - 1e-6).max(0.0), (p.rb - 1e-6).max(0.0)));
            prop_assert!(!region.contains(p.ra + 1e-3, p.rb + 1e-3));
        }
    }
}
