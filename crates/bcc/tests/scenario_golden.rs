//! Golden tests for the `Scenario`/`Evaluator` batch API: the paper's
//! Fig. 3 / Fig. 4 sum-rate values and the MABC↔TDBC SNR crossover, all
//! evaluated through the batch code path, plus a property test that
//! batched results equal point-by-point evaluation exactly.

use bcc::num::interp::crossings;
use bcc::prelude::*;
use proptest::prelude::*;

fn fig4(p_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
}

#[test]
fn golden_fig4_sum_rates_through_scenario() {
    // Regression lock on the reproduced Fig. 4 optima at P = 10 dB
    // (bits/use, recorded in EXPERIMENTS.md), now pinned through the batch
    // evaluator instead of per-protocol calls.
    let cmp = Scenario::at(fig4(10.0)).build().compare().unwrap();
    let expect = [
        (Protocol::DirectTransmission, 1.5827),
        (Protocol::Mabc, 3.3053),
        (Protocol::Tdbc, 3.0570),
        (Protocol::Hbc, 3.3313),
    ];
    for (proto, val) in expect {
        let sr = cmp.get(proto).unwrap().sum_rate;
        assert!(
            (sr - val).abs() < 5e-4,
            "{proto}: {sr:.4} drifted from locked value {val}"
        );
    }
    assert_eq!(cmp.best().unwrap().protocol, Protocol::Hbc);
}

#[test]
fn golden_fig3_symmetric_gain_values() {
    // Fig. 3 sweep A (P = 15 dB, G_ab = 0 dB, G_ar = G_br swept): locked
    // values at 0/10/20/30 dB relay gain.
    let sweep = Scenario::symmetric_gain_sweep_db(15.0, 0.0, [0.0, 10.0, 20.0, 30.0])
        .build()
        .sweep()
        .unwrap();
    let golden = [
        // (grid index, protocol, locked sum rate)
        (0, Protocol::DirectTransmission, 5.0278),
        (0, Protocol::Mabc, 3.7600),
        (0, Protocol::Tdbc, 5.0278), // TDBC degenerates to DT at 0 dB
        (1, Protocol::Mabc, 5.9660),
        (1, Protocol::Tdbc, 6.9392),
        (2, Protocol::Mabc, 8.1834),
        (3, Protocol::DirectTransmission, 5.0278), // DT flat in relay gain
    ];
    for (i, proto, val) in golden {
        let sr = sweep.series(proto).unwrap().solutions[i].sum_rate;
        assert!(
            (sr - val).abs() < 5e-4,
            "{proto} at index {i}: {sr:.4} drifted from locked value {val}"
        );
    }
    // HBC equals max(MABC, TDBC) on the whole symmetric-gain sweep.
    for i in 0..sweep.len() {
        let h = sweep.series(Protocol::Hbc).unwrap().solutions[i].sum_rate;
        let m = sweep.series(Protocol::Mabc).unwrap().solutions[i].sum_rate;
        let t = sweep.series(Protocol::Tdbc).unwrap().solutions[i].sum_rate;
        assert!((h - m.max(t)).abs() < 1e-6, "index {i}");
    }
}

#[test]
fn golden_fig3_position_values_and_hbc_wedge() {
    // Fig. 3 sweep B (P = 15 dB, γ = 3): locked values at d = 0.3 (inside
    // the HBC wedge) and d = 0.5 (midpoint).
    let sweep = Scenario::relay_position_sweep(15.0, 3.0, [0.3, 0.5])
        .unwrap()
        .build()
        .sweep()
        .unwrap();
    let golden = [
        (0, Protocol::Mabc, 6.3778),
        (0, Protocol::Tdbc, 6.3291),
        (0, Protocol::Hbc, 6.4681), // strictly above both: the wedge
        (1, Protocol::Mabc, 5.7512),
        (1, Protocol::Tdbc, 6.7396),
        (1, Protocol::Hbc, 6.7396),
    ];
    for (i, proto, val) in golden {
        let sr = sweep.series(proto).unwrap().solutions[i].sum_rate;
        assert!(
            (sr - val).abs() < 5e-4,
            "{proto} at index {i}: {sr:.4} drifted from locked value {val}"
        );
    }
    assert_eq!(sweep.winner(0), Protocol::Hbc);
    assert_eq!(sweep.strict_wins(Protocol::Hbc, 1e-3), vec![0.3]);
}

#[test]
fn golden_mabc_tdbc_crossover_through_scenario() {
    // The MABC↔TDBC SNR crossover at the Fig. 4 gains sits at ≈ 13.7 dB
    // (EXPERIMENTS.md); locate it from the batched power sweep.
    let sweep = Scenario::power_sweep_db(fig4(0.0), (-10..=25).map(f64::from))
        .build()
        .sweep()
        .unwrap();
    let cross = crossings(
        &sweep.series_points(Protocol::Mabc),
        &sweep.series_points(Protocol::Tdbc),
    );
    assert_eq!(cross.len(), 1, "exactly one crossover expected: {cross:?}");
    assert!(
        (cross[0] - 13.7).abs() < 0.5,
        "crossover drifted: {} dB",
        cross[0]
    );
    // Winners flip across the crossover.
    let below = sweep.xs.iter().position(|&x| x == 10.0).unwrap();
    let above = sweep.xs.iter().position(|&x| x == 20.0).unwrap();
    let m = sweep.series(Protocol::Mabc).unwrap().sum_rates();
    let t = sweep.series(Protocol::Tdbc).unwrap().sum_rates();
    assert!(m[below] > t[below]);
    assert!(t[above] > m[above]);
}

fn random_network() -> impl Strategy<Value = GaussianNetwork> {
    (
        -10.0f64..20.0,
        -15.0f64..15.0,
        -15.0f64..15.0,
        -15.0f64..15.0,
    )
        .prop_map(|(p, gab, gar, gbr)| {
            GaussianNetwork::from_db(Db::new(p), Db::new(gab), Db::new(gar), Db::new(gbr))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_sweep_equals_point_by_point(
        net in random_network(),
        powers in prop::collection::vec(-10.0f64..25.0, 1..6),
    ) {
        // The whole point of the batch evaluator: sharing the LP workspace
        // across grid points must not change any result, bit for bit.
        let sweep = Scenario::power_sweep_db(net, powers.clone())
            .build()
            .sweep()
            .unwrap();
        for (i, &p_db) in powers.iter().enumerate() {
            let point_net = net.with_power_db(Db::new(p_db));
            for proto in Protocol::ALL {
                let direct = point_net.max_sum_rate(proto).unwrap();
                let batched = &sweep.series(proto).unwrap().solutions[i];
                prop_assert_eq!(&direct, batched,
                    "batched result diverged at {} dB for {}", p_db, proto);
            }
        }
    }

    #[test]
    fn batched_outage_equals_sim_samples(net in random_network()) {
        // Single-point scenarios share the exact fade streams with the
        // classic bcc-sim Monte-Carlo driver.
        use bcc::channel::fading::FadingModel;
        use bcc::sim::ergodic::sum_rate_samples;
        let out = Scenario::at(net).rayleigh(25, 77).build().outage().unwrap();
        let cfg = McConfig::new(25, 77);
        for proto in Protocol::ALL {
            let scenario_samples = out.samples(proto, 0);
            let sim_samples = sum_rate_samples(&net, proto, FadingModel::Rayleigh, &cfg);
            prop_assert_eq!(scenario_samples, &sim_samples[..], "{} streams diverged", proto);
        }
    }
}
