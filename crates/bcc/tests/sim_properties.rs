//! Deterministic (seeded) property-style integration tests of the
//! simulators: bound compliance and ordering facts across a grid of
//! configurations.

use bcc::channel::fading::FadingModel;
use bcc::channel::ChannelState;
use bcc::core::gaussian::GaussianNetwork;
use bcc::core::protocol::Protocol;
use bcc::sim::ergodic::sum_rate_samples;
use bcc::sim::packet::{simulate_exchange, ErasureNetwork, RelayScheme};
use bcc::sim::McConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn packet_throughput_never_exceeds_bound_across_grid() {
    for (i, &(q_ab, q_ar, q_br)) in [
        (0.1, 0.9, 0.9),
        (0.5, 0.7, 0.3),
        (0.9, 0.4, 0.8),
        (0.0, 0.6, 0.6),
        (1.0, 1.0, 1.0),
    ]
    .iter()
    .enumerate()
    {
        let net = ErasureNetwork::new(q_ab, q_ar, q_br);
        let bound = net.xor_relay_bound();
        for scheme in [RelayScheme::XorNetworkCoding, RelayScheme::PlainForwarding] {
            let mut rng = StdRng::seed_from_u64(1000 + i as u64);
            let r = simulate_exchange(&net, scheme, 2000, &mut rng);
            assert!(
                r.sum_throughput <= bound + 1e-9,
                "config {i} {scheme:?}: {} > bound {bound}",
                r.sum_throughput
            );
            assert_eq!(r.pairs_delivered, 2000);
        }
    }
}

#[test]
fn overhearing_never_hurts_across_grid() {
    for (i, &(q_ab, q_ar, q_br)) in [(0.2, 0.8, 0.8), (0.6, 0.5, 0.9), (0.9, 0.9, 0.3)]
        .iter()
        .enumerate()
    {
        let net = ErasureNetwork::new(q_ab, q_ar, q_br);
        let mut rng = StdRng::seed_from_u64(2000 + i as u64);
        let with = simulate_exchange(&net, RelayScheme::XorWithOverhearing, 3000, &mut rng);
        let mut rng = StdRng::seed_from_u64(2000 + i as u64);
        let without = simulate_exchange(&net, RelayScheme::XorNetworkCoding, 3000, &mut rng);
        // Statistically, side information can only help; allow a small
        // stochastic slack since RNG streams diverge.
        assert!(
            with.sum_throughput >= without.sum_throughput - 0.015,
            "config {i}: overhearing {} vs plain {}",
            with.sum_throughput,
            without.sum_throughput
        );
    }
}

#[test]
fn per_fade_sum_rates_never_exceed_no_fading_envelope_scaled() {
    // Each per-fade optimum is itself a valid optimum for the faded
    // channel; sanity: with fades clipped at their mean (None model),
    // every sample equals the deterministic value.
    let net = GaussianNetwork::new(10.0, ChannelState::new(0.2, 1.0, 3.16));
    let cfg = McConfig::new(50, 7);
    for proto in Protocol::ALL {
        let exact = net.max_sum_rate(proto).unwrap().sum_rate;
        let samples = sum_rate_samples(&net, proto, FadingModel::None, &cfg);
        for s in samples {
            assert!((s - exact).abs() < 1e-9, "{proto}");
        }
    }
}

#[test]
fn rayleigh_samples_span_above_and_below_the_mean() {
    // Fading creates genuine spread: some fades beat the path-loss-only
    // channel (constructive), some fall below.
    let net = GaussianNetwork::new(10.0, ChannelState::new(0.2, 1.0, 3.16));
    let cfg = McConfig::new(500, 11);
    let exact = net.max_sum_rate(Protocol::Hbc).unwrap().sum_rate;
    let samples = sum_rate_samples(&net, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
    let above = samples.iter().filter(|&&s| s > exact).count();
    let below = samples.iter().filter(|&&s| s < exact).count();
    assert!(
        above > 25,
        "only {above}/500 fades above the deterministic rate"
    );
    assert!(
        below > 250,
        "only {below}/500 fades below (Jensen skew expected)"
    );
}

#[test]
fn protocol_dominance_holds_per_fade_not_just_on_average() {
    // HBC ≥ MABC and HBC ≥ TDBC for every single fade realisation
    // (identical fade streams per trial index).
    let net = GaussianNetwork::new(10.0, ChannelState::new(0.2, 1.0, 3.16));
    let cfg = McConfig::new(200, 13);
    let hbc = sum_rate_samples(&net, Protocol::Hbc, FadingModel::Rayleigh, &cfg);
    let mabc = sum_rate_samples(&net, Protocol::Mabc, FadingModel::Rayleigh, &cfg);
    let tdbc = sum_rate_samples(&net, Protocol::Tdbc, FadingModel::Rayleigh, &cfg);
    for i in 0..hbc.len() {
        assert!(hbc[i] >= mabc[i] - 1e-8, "trial {i}: HBC < MABC");
        assert!(hbc[i] >= tdbc[i] - 1e-8, "trial {i}: HBC < TDBC");
    }
}
