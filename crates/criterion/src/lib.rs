//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Vendors the subset of the criterion 0.5 API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`] and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warm-up, then a fixed wall-clock
//! budget of timed batches, reporting the fastest observed per-iteration
//! time (the most noise-robust point statistic). Good enough to compare
//! hot paths locally and to smoke-run in CI; not a statistics suite.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching criterion's for convenience in bench code.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(200);

/// Measures closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Best observed nanoseconds per iteration.
    best_ns: f64,
    /// Total iterations executed while measuring.
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration.
        let start = Instant::now();
        let mut batch: u64 = 1;
        while start.elapsed() < WARMUP {
            for _ in 0..batch {
                black_box(f());
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        // Timed batches.
        let mut best = f64::INFINITY;
        let mut iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(dt);
            iters += batch;
        }
        self.best_ns = best;
        self.iters = iters;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simplified runner's budget is
    /// time-based, so the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifies the benchmark by its parameter value alone.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identifies the benchmark by a function name and parameter.
    pub fn new(function: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

fn report(name: &str, b: &Bencher) {
    if b.best_ns >= 1_000_000.0 {
        println!(
            "{name:<48} {:>12.3} ms/iter  ({} iters)",
            b.best_ns / 1e6,
            b.iters
        );
    } else if b.best_ns >= 1_000.0 {
        println!(
            "{name:<48} {:>12.3} us/iter  ({} iters)",
            b.best_ns / 1e3,
            b.iters
        );
    } else {
        println!(
            "{name:<48} {:>12.1} ns/iter  ({} iters)",
            b.best_ns, b.iters
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.best_ns > 0.0 && b.best_ns.is_finite());
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
