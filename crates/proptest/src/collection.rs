//! Collection strategies (`prop::collection`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Lengths accepted by [`vec()`]: an exact `usize` or a (half-open or
/// inclusive) `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProptestConfig, TestRunner};

    #[test]
    fn exact_and_ranged_lengths() {
        let mut r = TestRunner::new(&ProptestConfig::default(), "len");
        for _ in 0..20 {
            assert_eq!(r.sample(&vec(0f64..1.0, 5)).len(), 5);
            let n = r.sample(&vec(0u8..2, 1..4)).len();
            assert!((1..4).contains(&n));
            let m = r.sample(&vec(0u8..2, 2..=6)).len();
            assert!((2..=6).contains(&m));
        }
    }
}
