//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the `proptest` 1.x API used by the workspace test suites:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_flat_map`,
//! range and tuple strategies, `collection::vec`, `sample::subsequence`,
//! `num::f64::NORMAL`, [`ProptestConfig`] and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the sampled inputs via the
//!   ordinary assert message instead of a minimised counterexample.
//! * **Deterministic seeding** — the RNG seed is derived from the test's
//!   module path and name, so runs are reproducible without a regression
//!   file.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

pub mod collection;
pub mod num;
pub mod sample;

/// How many rejected samples a filter tolerates before giving up.
const MAX_REJECTS: u32 = 10_000;

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resampling up to an internal limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a second strategy from each produced value and samples it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {MAX_REJECTS} samples in a row",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

/// Test-run configuration (subset of the upstream struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one property test (used by the `proptest!` macro).
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from the test's name.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Samples one value from `strategy`.
    pub fn sample<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.sample(&mut self.rng)
    }
}

/// The macro/namespace prelude (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests over sampled inputs.
///
/// Supports the upstream surface used in this workspace: an optional
/// leading `#![proptest_config(...)]`, then `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__runner.cases() {
                $(let $arg = __runner.sample(&($strat));)+
                // A block so `prop_assume!` can `continue` to the next case.
                {
                    $body
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(pair in (0f64..1.0, 5u8..=9), n in 1usize..4) {
            let (a, b) = pair;
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_filter_flat_map(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn deterministic_runner() {
        let cfg = ProptestConfig::with_cases(8);
        let mut r1 = crate::TestRunner::new(&cfg, "t");
        let mut r2 = crate::TestRunner::new(&cfg, "t");
        for _ in 0..20 {
            assert_eq!(r1.sample(&(0u64..1000)), r2.sample(&(0u64..1000)));
        }
    }

    #[test]
    fn filter_applies_predicate() {
        let cfg = ProptestConfig::default();
        let mut r = crate::TestRunner::new(&cfg, "f");
        let s = (0i32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(r.sample(&s) % 2, 0);
        }
    }
}
