//! Numeric strategies (`prop::num`).

/// `f64` strategies.
pub mod f64 {
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing finite, non-NaN, non-subnormal `f64`s of either
    /// sign across many orders of magnitude (log-uniform magnitude in
    /// `[1e-9, 1e9]`).
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// See [`NormalF64`].
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let exponent: f64 = rng.gen_range(-9.0..9.0);
            let mantissa: f64 = rng.gen_range(1.0..10.0);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * mantissa * 10f64.powf(exponent)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::{ProptestConfig, TestRunner};

        #[test]
        fn normal_values_are_finite_and_varied() {
            let mut r = TestRunner::new(&ProptestConfig::default(), "n");
            let mut pos = 0;
            for _ in 0..200 {
                let x = r.sample(&NORMAL);
                assert!(x.is_finite() && x != 0.0);
                if x > 0.0 {
                    pos += 1;
                }
            }
            assert!(pos > 50 && pos < 150, "both signs produced: {pos}/200");
        }
    }
}
