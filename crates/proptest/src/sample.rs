//! Sampling strategies over existing collections (`prop::sample`).

use crate::collection::SizeRange;
use crate::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Strategy producing order-preserving subsequences of `values` whose
/// length is drawn from `size` (clamped to the collection length).
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn sample(&self, rng: &mut StdRng) -> Vec<T> {
        let n = self.size.sample(rng).min(self.values.len());
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx.sort_unstable();
        idx.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProptestConfig, TestRunner};

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut r = TestRunner::new(&ProptestConfig::default(), "sub");
        let base = vec![1, 2, 3, 4, 5];
        for _ in 0..50 {
            let s = r.sample(&subsequence(base.clone(), 1..=3));
            assert!((1..=3).contains(&s.len()));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            assert_eq!(s, sorted, "order preserved");
        }
    }
}
