//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the *subset* of the `rand` 0.8 API that the
//! workspace actually uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, the [`rngs::StdRng`] generator and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a fast,
//! high-quality, fully deterministic PRNG. It is **not** the same stream
//! as upstream `rand`'s `StdRng` (ChaCha12), so seeded sequences differ
//! from upstream; every consumer in this workspace only relies on
//! determinism and statistical quality, not on exact upstream streams.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`; `inclusive` widens to `[low, high]`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Multiply-shift rejection-free mapping; the modulo bias over
                // a 64-bit draw is at most span/2^64, far below anything the
                // workspace's statistical tests can resolve.
                let draw = rng.next_u64() as u128;
                (lo + (draw * span >> 64) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high || (_inclusive && low <= high), "empty float range");
                let u = <$t as Standard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The crate's prelude (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
