//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Statistically strong and fast; unlike upstream `rand`'s ChaCha-based
/// `StdRng` it is not cryptographically secure, which no consumer in this
/// workspace needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// Alias kept for API compatibility; same generator as [`StdRng`].
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
