//! Sequence-related random operations.

use crate::{Rng, RngCore};

/// Random slice operations (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_empty_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
