//! Outage analysis under Rayleigh fading — what a cellular operator would
//! actually quote (the paper's quasi-static fading model, taken to its
//! operational conclusion).
//!
//! ```bash
//! cargo run --example outage_analysis --release
//! ```
//!
//! Estimates, for each protocol at the Fig. 4 gains: the ergodic sum rate,
//! the 5%- and 10%-outage sum rates, and the outage probability of
//! operating at half the no-fading optimum.

use bcc::channel::fading::FadingModel;
use bcc::core::gaussian::GaussianNetwork;
use bcc::core::protocol::Protocol;
use bcc::num::Db;
use bcc::plot::Table;
use bcc::sim::ergodic::ergodic_sum_rate;
use bcc::sim::outage::OutageProfile;
use bcc::sim::McConfig;

fn main() {
    let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
    let cfg = McConfig::new(3000, 20260609);

    println!("Rayleigh fading, P = 10 dB, {} ({} trials)\n", net.state(), cfg.trials);
    let mut table = Table::new(vec![
        "protocol".into(),
        "no-fading".into(),
        "ergodic".into(),
        "5%-outage".into(),
        "10%-outage".into(),
        "P[outage @ half rate]".into(),
    ]);
    for proto in Protocol::ALL {
        let exact = net.max_sum_rate(proto).expect("LP").sum_rate;
        let erg = ergodic_sum_rate(&net, proto, FadingModel::Rayleigh, &cfg);
        let profile = OutageProfile::estimate(&net, proto, FadingModel::Rayleigh, &cfg);
        table.row(vec![
            proto.name().into(),
            format!("{exact:.4}"),
            format!("{:.4}", erg.mean()),
            format!("{:.4}", profile.outage_rate(0.05)),
            format!("{:.4}", profile.outage_rate(0.10)),
            format!("{:.4}", profile.outage_probability(exact / 2.0)),
        ]);
    }
    println!("{}", table.render());
    println!("note: ergodic < no-fading for every protocol (Jensen), and HBC");
    println!("dominates MABC/TDBC at every quantile because it subsumes them");
    println!("fade-by-fade.");
}
