//! Relay placement in a cellular corridor (the paper's motivating
//! scenario: `a` a mobile, `b` a base station, `r` a relay station).
//!
//! ```bash
//! cargo run --example relay_placement
//! ```
//!
//! Sweeps the relay along the line between the terminals with path-loss
//! exponent γ = 3 and asks, per position: which protocol maximises the
//! sum rate, and where should an operator actually place the relay?

use bcc::channel::topology::LineNetwork;
use bcc::core::comparison::SumRateComparison;
use bcc::core::gaussian::GaussianNetwork;
use bcc::num::Db;
use bcc::plot::{Chart, Series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = Db::new(10.0).to_linear();
    let gamma = 3.0;

    let mut best_series = Series::new("best protocol sum rate");
    let mut best_position = (0.0, f64::MIN);
    println!("relay position sweep (P = 10 dB, γ = {gamma}):\n");
    println!("{:>6}  {:>8}  {:<6}", "d", "sum rate", "winner");
    for i in 1..=19 {
        let d = i as f64 / 20.0;
        let net = GaussianNetwork::new(power, LineNetwork::new(d, gamma).channel_state());
        let cmp = SumRateComparison::evaluate(&net)?;
        let best = cmp.best();
        best_series.push(d, best.sum_rate);
        if best.sum_rate > best_position.1 {
            best_position = (d, best.sum_rate);
        }
        println!("{d:>6.2}  {:>8.4}  {:<6}", best.sum_rate, best.protocol.name());
    }
    println!(
        "\noptimal placement: d = {:.2} ({:.4} bits/use)",
        best_position.0, best_position.1
    );
    println!(
        "{}",
        Chart::new(60, 14)
            .title("Best-protocol sum rate vs relay position")
            .x_label("relay position d (a at 0, b at 1)")
            .y_label("bits/use")
            .add(best_series)
            .render()
    );
    Ok(())
}
