//! # Bidirectional Coded Cooperation (BCC)
//!
//! A Rust reproduction of **Kim, Mitran, Tarokh — "Performance Bounds for
//! Bidirectional Coded Cooperation Protocols"** (ICDCS 2007; IEEE Trans.
//! Inf. Theory 54(11):5235–5240, 2008).
//!
//! Two terminals `a` and `b` exchange messages over a shared half-duplex
//! wireless channel with the help of a relay `r`. The paper analyses three
//! decode-and-forward protocols — MABC (2 phases), TDBC (3 phases) and HBC
//! (4 phases) — and derives capacity inner/outer bounds for each, then
//! evaluates them on the AWGN channel with path loss.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`num`] | complex numbers, dB units, special functions, statistics |
//! | [`lp`] | dense two-phase simplex LP solver |
//! | [`info`] | entropies, mutual information, DMCs, Blahut–Arimoto |
//! | [`channel`] | gains, path loss, Rayleigh fading, AWGN simulation |
//! | [`coding`] | GF(2) codes, XOR network coding, random binning |
//! | [`core`] | **the paper's bounds** (Theorems 2–6), regions, optimizers |
//! | [`sim`] | Monte-Carlo outage/ergodic + packet/symbol simulators |
//! | [`plot`] | ASCII charts, CSV and aligned-table writers |
//!
//! # Quickstart
//!
//! ```
//! use bcc::core::gaussian::GaussianNetwork;
//! use bcc::core::protocol::Protocol;
//! use bcc::num::Db;
//!
//! // Fig. 4 setup of the paper: P = 10 dB, Gab = -7 dB, Gar = 0 dB,
//! // Gbr = 5 dB.
//! let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
//!
//! // Optimal achievable sum rate of each protocol, optimised over phase
//! // durations by linear programming:
//! for proto in Protocol::ALL {
//!     let sr = net.max_sum_rate(proto).unwrap();
//!     println!("{proto}: {:.3} bits/use", sr.sum_rate);
//! }
//! ```

#![forbid(unsafe_code)]

pub use bcc_channel as channel;
pub use bcc_coding as coding;
pub use bcc_core as core;
pub use bcc_info as info;
pub use bcc_lp as lp;
pub use bcc_num as num;
pub use bcc_plot as plot;
pub use bcc_sim as sim;
